//! The shared, chunked, parallel ingestion front-end.
//!
//! Both detectors' record→row scatter passes — the front door of every
//! bin — run through the machinery in this module:
//!
//! * **Chunked parallel scatter.** A bin's records are split into
//!   fixed-size chunks ([`resolve_chunk`]); engine workers scatter each
//!   chunk into private per-(chunk, shard) row buffers, reading the
//!   persistent intern tables lock-free. Per-shard rows are then
//!   concatenated **in chunk order**, so the row sequence every shard
//!   sorts is exactly the sequence a single-threaded scatter would have
//!   produced — grouped output, and therefore every report, is
//!   byte-identical across thread counts and chunk sizes.
//! * **Persistent interning epochs.** Links, probes, pattern keys, and
//!   next hops are interned into dense ids once and kept across bins
//!   ([`Interner`]): a steady-state bin whose keys are all known performs
//!   zero intern-table insertions and zero re-hashing. Keys first seen
//!   mid-bin are queued per chunk and merged *in chunk order* (= record
//!   order) by a short sequential pass between the scatter wave and the
//!   shard wave, so id assignment is independent of the chunking.
//! * **Compaction.** Every interned key carries the last bin it was
//!   observed in; a sweep driven by the same
//!   `DetectorConfig::reference_expiry_bins` clock the detectors' own
//!   reference eviction uses drops dead keys and renumbers the survivors,
//!   so key churn cannot grow the tables without bound. Dense ids are
//!   never visible in reports, which makes compaction byte-for-byte
//!   invisible — `tests/ingest_parity.rs` proves it.
//!
//! The two-wave protocol per bin (scatter-chunk jobs, then shard jobs)
//! is what `engine::run_jobs` executes; `engine::Wave` is the two-lane
//! pre-stage collection that lets one worker herd serve the scatter
//! chunks of *every* detector — and, in a fleet, every stream — at once,
//! and, in the cross-bin pipelined executor, serve them *alongside* the
//! previous bin's shard jobs.

use crate::engine;
use pinpoint_model::records::TracerouteRecord;
use pinpoint_model::{BinId, FxHashMap};
use std::hash::Hash;

/// Records per scatter chunk when `DetectorConfig::ingest_chunk_records`
/// is 0 ("auto"). Small enough that a realistic bin yields more chunks
/// than workers, large enough that per-chunk bookkeeping stays noise.
pub const DEFAULT_CHUNK_RECORDS: usize = 512;

/// Auto chunk size when the pool has a single worker. With no cores to
/// spread chunks over, chunking is purely a cache-blocking knob: a
/// chunk's run/value buffers and dedup maps should stay resident while
/// the next chunk scatters, and the `ingest_heavy` workload measures
/// smaller blocks beating [`DEFAULT_CHUNK_RECORDS`] by ~5% on one core
/// (and the whole-bin single chunk losing ~40% — its per-shard buffers
/// outgrow the cache).
pub const SINGLE_WORKER_CHUNK_RECORDS: usize = 128;

/// Resolve the `ingest_chunk_records` knob (0 = auto) into a chunk size.
pub fn resolve_chunk(chunk_records: usize) -> usize {
    if chunk_records == 0 {
        DEFAULT_CHUNK_RECORDS
    } else {
        chunk_records
    }
}

/// Chunk-size resolution with the worker count in hand: when the knob is
/// auto (`0`) and the pool has a single worker — where `engine::run_jobs`
/// already takes its no-thread inline path, no scoped workers spawned —
/// chunks shrink to the cache-blocking size
/// ([`SINGLE_WORKER_CHUNK_RECORDS`]). An explicitly pinned chunk size is
/// always honored, so the parity matrix's pathological chunkings still
/// exercise the same machinery on any machine. Purely a throughput knob:
/// output is byte-identical for every chunking.
pub fn resolve_chunk_for(chunk_records: usize, threads: usize) -> usize {
    if chunk_records == 0 && threads <= 1 {
        SINGLE_WORKER_CHUNK_RECORDS
    } else {
        resolve_chunk(chunk_records)
    }
}

/// Bit marking a row id as *pending*: a chunk-local index into the
/// chunk's new-key queue rather than a table slot. Patched to the final
/// dense id during the chunk-ordered gather.
pub(crate) const PENDING: u32 = 1 << 31;

/// Reserved row id for presence-only pattern rows (a pattern observed
/// with no next-hop packets). Sorts after every real id; never patched.
pub(crate) const SENTINEL: u32 = u32::MAX;

/// Counters describing one arena's interning epoch. Aggregated over all
/// of an arena's tables (links + probes, or patterns + next hops) by
/// `DelayDetector::ingest_stats` / `ForwardingDetector::ingest_stats`,
/// and over both arenas by `Analyzer::ingest_stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IngestStats {
    /// Keys currently interned (live table size).
    pub interned: usize,
    /// Intern-table insertions during the most recent bin. A steady-state
    /// bin — every key already known — performs **zero**.
    pub bin_insertions: u64,
    /// Cumulative intern-table insertions over the epoch.
    pub insertions: u64,
    /// Cumulative keys evicted by compaction.
    pub evictions: u64,
}

impl IngestStats {
    /// Sum two stat sets (e.g. both arenas of an analyzer).
    pub fn merged(self, other: IngestStats) -> IngestStats {
        IngestStats {
            interned: self.interned + other.interned,
            bin_insertions: self.bin_insertions + other.bin_insertions,
            insertions: self.insertions + other.insertions,
            evictions: self.evictions + other.evictions,
        }
    }
}

/// An epoch-persistent intern table: key → dense id, with a last-seen
/// bin per id driving compaction.
///
/// Read path (`get`) takes `&self` and is what scatter workers share —
/// known keys resolve with one hash lookup, no lock, no insertion. The
/// write path (`insert`, `stamp`, `compact`) runs only on the sequential
/// merge between waves or inside the id-owning shard's job, so the table
/// is read-mostly by construction.
#[derive(Debug)]
pub(crate) struct Interner<K> {
    index: FxHashMap<K, u32>,
    keys: Vec<K>,
    last_seen: Vec<BinId>,
    insertions: u64,
    evictions: u64,
}

impl<K> Default for Interner<K> {
    fn default() -> Self {
        Interner {
            index: FxHashMap::default(),
            keys: Vec::new(),
            last_seen: Vec::new(),
            insertions: 0,
            evictions: 0,
        }
    }
}

impl<K: Copy + Eq + Hash> Interner<K> {
    /// Dense id of `key`, if interned.
    pub(crate) fn get(&self, key: &K) -> Option<u32> {
        self.index.get(key).copied()
    }

    /// Intern a new key (must be absent) and stamp it with `bin`.
    pub(crate) fn insert(&mut self, key: K, bin: BinId) -> u32 {
        debug_assert!(!self.index.contains_key(&key));
        let id = self.keys.len() as u32;
        // Dense ids share their 32-bit space with the PENDING flag and the
        // SENTINEL marker; growth anywhere near that range must fail loud,
        // not corrupt packed row keys.
        assert!(
            id & PENDING == 0,
            "intern table overflow: dense id space exhausted"
        );
        self.keys.push(key);
        self.last_seen.push(bin);
        self.index.insert(key, id);
        self.insertions += 1;
        id
    }

    /// Mark `id` as observed in `bin`.
    pub(crate) fn stamp(&mut self, id: u32, bin: BinId) {
        self.last_seen[id as usize] = bin;
    }

    /// All interned keys, dense-id order (id `i` is `keys()[i]`).
    pub(crate) fn keys(&self) -> &[K] {
        &self.keys
    }

    /// Live interned keys.
    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    /// Cumulative insertions.
    pub(crate) fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Cumulative evictions.
    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The epoch state a snapshot must carry: keys in dense-id order,
    /// their last-seen stamps, and the cumulative counters. Serializing
    /// the keys in this order is what lets [`Interner::from_parts`]
    /// reproduce identical dense-id assignment on restore.
    pub(crate) fn snapshot_parts(&self) -> (&[K], &[BinId], u64, u64) {
        (&self.keys, &self.last_seen, self.insertions, self.evictions)
    }

    /// Rebuild a table from [`Interner::snapshot_parts`] output: key `i`
    /// gets dense id `i`, exactly as the original insertion order did.
    pub(crate) fn from_parts(
        keys: Vec<K>,
        last_seen: Vec<BinId>,
        insertions: u64,
        evictions: u64,
    ) -> Self {
        debug_assert_eq!(keys.len(), last_seen.len());
        let index = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (*k, i as u32))
            .collect();
        Interner {
            index,
            keys,
            last_seen,
            insertions,
            evictions,
        }
    }

    /// Whether any key has gone unseen for more than `expiry_bins` bins —
    /// the same predicate [`Interner::compact`] uses as its fast path.
    /// The pipelined executor asks this *before* overlapping a new bin:
    /// a sweep may only run in a drained gap (no bin's rows in flight),
    /// so a `true` here forces the pipeline to fence first.
    pub(crate) fn any_expired(&self, now: BinId, expiry_bins: usize) -> bool {
        self.last_seen
            .iter()
            .any(|&seen| engine::reference_expired(now, seen, expiry_bins))
    }

    /// Drop every key unseen for more than `expiry_bins` bins (the
    /// shared [`engine::reference_expired`] clock) and renumber the
    /// survivors in their existing order. Returns the old ids kept, in
    /// new-id order, when anything was evicted — callers with parallel
    /// per-id payloads compact them with the same list — or `None` when
    /// the table is untouched (the steady-state fast path: one linear
    /// scan of the stamp vector, no moves, no re-hash).
    pub(crate) fn compact(&mut self, now: BinId, expiry_bins: usize) -> Option<Vec<u32>> {
        if !self.any_expired(now, expiry_bins) {
            return None;
        }
        let mut kept: Vec<u32> = Vec::with_capacity(self.keys.len());
        let mut w = 0usize;
        for old in 0..self.keys.len() {
            if engine::reference_expired(now, self.last_seen[old], expiry_bins) {
                self.index.remove(&self.keys[old]);
                self.evictions += 1;
                continue;
            }
            self.keys[w] = self.keys[old];
            self.last_seen[w] = self.last_seen[old];
            *self
                .index
                .get_mut(&self.keys[w])
                .expect("surviving key is indexed") = w as u32;
            kept.push(old as u32);
            w += 1;
        }
        self.keys.truncate(w);
        self.last_seen.truncate(w);
        Some(kept)
    }
}

/// One arena's reusable scatter-chunk buffers plus the active count of
/// the current bin — the per-bin session bookkeeping both arenas share.
/// `reserve` appends (incremental feeding extends the same bin), reusing
/// buffers retained from earlier bins.
#[derive(Debug)]
pub(crate) struct ChunkPool<C> {
    chunks: Vec<C>,
    active: usize,
}

impl<C> Default for ChunkPool<C> {
    fn default() -> Self {
        ChunkPool {
            chunks: Vec::new(),
            active: 0,
        }
    }
}

impl<C: Default> ChunkPool<C> {
    /// Start a new bin: the next `reserve` overwrites from the start.
    pub(crate) fn begin_bin(&mut self) {
        self.active = 0;
    }

    /// Reserve `n` buffers for the current bin (appending to any already
    /// reserved), resetting each through `reset` before handing it out.
    pub(crate) fn reserve(&mut self, n: usize, mut reset: impl FnMut(&mut C)) -> &mut [C] {
        let start = self.active;
        self.active += n;
        if self.chunks.len() < self.active {
            self.chunks.resize_with(self.active, C::default);
        }
        let chunks = &mut self.chunks[start..start + n];
        for chunk in chunks.iter_mut() {
            reset(chunk);
        }
        chunks
    }

    /// The current bin's chunks, in scatter order.
    pub(crate) fn active(&self) -> &[C] {
        &self.chunks[..self.active]
    }

    /// The current bin's chunks, mutably (for the merge's patch tables).
    pub(crate) fn active_mut(&mut self) -> &mut [C] {
        &mut self.chunks[..self.active]
    }
}

/// Number of scatter chunks a record slice splits into.
pub(crate) fn chunk_count(records: usize, chunk_records: usize) -> usize {
    records.div_ceil(chunk_records.max(1))
}

/// Build one boxed scatter job per fixed-size record chunk: chunk `i`
/// gets records `[i·c, (i+1)·c)` and scatters them through `scatter`
/// against the shared read-only `view`. `chunks` must come from a
/// `ChunkPool::reserve` of [`chunk_count`] buffers.
pub(crate) fn chunk_jobs<'a, C: Send, V: Copy + Send + 'a>(
    chunks: &'a mut [C],
    records: &'a [TracerouteRecord],
    chunk_records: usize,
    view: V,
    scatter: fn(&mut C, &[TracerouteRecord], V),
) -> Vec<engine::Job<'a>> {
    let chunk_records = chunk_records.max(1);
    debug_assert_eq!(chunks.len(), chunk_count(records.len(), chunk_records));
    chunks
        .iter_mut()
        .zip(records.chunks(chunk_records))
        .map(|(chunk, records)| Box::new(move || scatter(chunk, records, view)) as engine::Job<'a>)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_assigns_dense_ids_in_insert_order() {
        let mut t: Interner<u64> = Interner::default();
        assert_eq!(t.get(&7), None);
        assert_eq!(t.insert(7, BinId(0)), 0);
        assert_eq!(t.insert(9, BinId(0)), 1);
        assert_eq!(t.get(&7), Some(0));
        assert_eq!(t.get(&9), Some(1));
        assert_eq!(t.keys()[1], 9);
        assert_eq!(t.keys(), &[7, 9]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.insertions(), 2);
    }

    #[test]
    fn compact_is_a_noop_while_keys_stay_fresh() {
        let mut t: Interner<u64> = Interner::default();
        t.insert(1, BinId(0));
        t.insert(2, BinId(0));
        assert!(t.compact(BinId(2), 2).is_none());
        assert_eq!(t.len(), 2);
        assert_eq!(t.evictions(), 0);
    }

    #[test]
    fn compact_evicts_expired_keys_and_renumbers_survivors() {
        let mut t: Interner<u64> = Interner::default();
        t.insert(10, BinId(0));
        t.insert(20, BinId(0));
        t.insert(30, BinId(0));
        t.stamp(1, BinId(5));
        // Keys 10 and 30 expired (last seen bin 0, expiry 2, now bin 5).
        let kept = t.compact(BinId(5), 2).expect("something must be evicted");
        assert_eq!(kept, vec![1]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&20), Some(0), "survivor renumbered to id 0");
        assert_eq!(t.get(&10), None);
        assert_eq!(t.get(&30), None);
        assert_eq!(t.evictions(), 2);
        // A re-appearing key is a fresh insertion.
        assert_eq!(t.insert(10, BinId(6)), 1);
        assert_eq!(t.insertions(), 4);
    }

    #[test]
    fn chunk_resolution_defaults_on_zero() {
        assert_eq!(resolve_chunk(0), DEFAULT_CHUNK_RECORDS);
        assert_eq!(resolve_chunk(7), 7);
    }

    #[test]
    fn single_worker_auto_chunk_shrinks_to_cache_blocks() {
        // Auto chunking on one worker: the cache-blocking size.
        assert_eq!(resolve_chunk_for(0, 1), SINGLE_WORKER_CHUNK_RECORDS);
        // Multi-worker auto keeps the default; pinned sizes are honored
        // everywhere (the parity matrix depends on it).
        assert_eq!(resolve_chunk_for(0, 4), DEFAULT_CHUNK_RECORDS);
        assert_eq!(resolve_chunk_for(7, 1), 7);
        assert_eq!(resolve_chunk_for(7, 4), 7);
    }

    #[test]
    fn any_expired_matches_compact_fast_path() {
        let mut t: Interner<u64> = Interner::default();
        t.insert(1, BinId(0));
        assert!(!t.any_expired(BinId(2), 2));
        assert!(t.any_expired(BinId(3), 2));
    }
}
