//! # pinpoint-core
//!
//! The paper's contribution: detection of delay changes and forwarding
//! anomalies from large-scale traceroute measurements, and AS-level
//! aggregation into event magnitudes.
//!
//! *Fontugne, Aben, Pelsser, Bush — "Pinpointing Delay and Forwarding
//! Anomalies Using Large-Scale Traceroute Measurements", IMC 2017.*
//!
//! ## Architecture
//!
//! ```text
//!   TracerouteRecord stream (pinpoint-atlas, or your own Atlas feed)
//!        │ 1-hour bins
//!        ▼
//!   ┌──────────────────────────┐   ┌──────────────────────────────┐
//!   │ diffrtt: differential    │   │ forwarding: per-(router,dst) │
//!   │ RTT per IP link,         │   │ next-hop patterns, Pearson   │
//!   │ ≥3-AS + entropy filter,  │   │ correlation vs smoothed      │
//!   │ median + Wilson CI vs    │   │ reference, per-hop           │
//!   │ smoothed reference (§4)  │   │ responsibility scores (§5)   │
//!   └───────────┬──────────────┘   └───────────────┬──────────────┘
//!               │ DelayAlarm(d(Δ))                 │ ForwardingAlarm(ρ, rᵢ)
//!               ▼                                  ▼
//!   ┌──────────────────────────────────────────────────────────────┐
//!   │ aggregate: IP→AS longest-prefix match, per-AS severity time  │
//!   │ series, magnitude = sliding median/MAD normalization (§6)    │
//!   └──────────────────────────────────────────────────────────────┘
//!               │                                  │
//!               ▼                                  ▼
//!        AS delay magnitude                AS forwarding magnitude
//!               └────────────── graph: alarm connected components
//!                               around an address (Fig. 8 / Fig. 12)
//! ```
//!
//! In front of it all sits the record [`sanitize`]r: real traceroute
//! feeds carry measurement artifacts (loops and false links from
//! per-flow load balancing, wrong-hop ICMP attribution, impossible
//! RTTs), and structurally broken records are quarantined — with
//! repairable ones fixed in place — before any detector sees them,
//! counted per bin in [`sanitize::SanitizeStats`]
//! ([`pipeline::Analyzer::sanitize_stats`] /
//! [`stream::StreamRouter::sanitize_stats`]).
//!
//! [`pipeline::Analyzer`] wires the stages together for both offline batch
//! runs and the §8 streaming ("Internet Health Report") mode;
//! [`stream::StreamRouter`] scales that to a fleet of analyzers — one per
//! concurrent measurement stream — sharing one engine pool with merged
//! cross-stream reporting. The [`baseline`] module carries the non-robust
//! comparison detectors used by the ablation benches.
//!
//! ## Performance
//!
//! The per-bin hot path is a sharded, parallel, allocation-lean engine
//! (the paper's system must keep pace with the full Atlas stream, §8):
//!
//! * **Chunked parallel ingestion** — the record→row scatter pass (the
//!   front door of every bin) splits records into fixed-size chunks and
//!   scatters them on the engine pool into per-(chunk, shard) row
//!   buffers, concatenated per shard **in chunk order** so grouped
//!   output is byte-identical for any chunk size or thread count
//!   ([`ingest`]). Bins can also be fed incrementally as slices arrive
//!   ([`pipeline::Analyzer::begin_bin`] / [`pipeline::Analyzer::ingest`]
//!   / [`pipeline::Analyzer::finish_bin`]) with the identical result.
//! * **Persistent interning epochs** — links, probes, pattern keys, and
//!   next hops intern into dense ids once and stay interned across bins:
//!   steady-state bins perform zero intern-table insertions (counted by
//!   [`pipeline::Analyzer::ingest_stats`], asserted in tests and on
//!   every bench run), and a compaction sweep on the shared
//!   `reference_expiry_bins` clock keeps the tables bounded under key
//!   churn — invisibly, since dense ids never reach reports.
//! * **Flat sample arena with run-length staging** — each (record, link)
//!   observation lands as ONE `(key, start, len)` run over a per-shard
//!   value pool ([`diffrtt::SampleArena`]): its 1–9 differential RTTs
//!   share a key, so the per-shard grouping sort touches ~an order of
//!   magnitude fewer elements than row-by-row staging would, and equal
//!   keys keep record order by a (chunk, offset) tiebreak. Every buffer
//!   is reused across bins: a steady stream settles into zero
//!   steady-state allocation.
//! * **Sharded per-link pipeline** — links (and their smoothed
//!   references) are assigned to 32 shards by a stable hash; a scoped
//!   thread pool walks whole shards, so reference mutation needs no
//!   locks. `DetectorConfig::threads` picks the worker count (0 = all
//!   cores).
//! * **Sharded forwarding engine** — the §5 detector runs the same
//!   architecture: next-hop packets are staged as 16-byte rows in a flat
//!   [`forwarding::pattern::PatternArena`] (bin-reused buffers), pattern
//!   keys shard by a stable `FxHash`, and each shard worker owns its
//!   reference map through the check → alarm → update pipeline.
//! * **Reference eviction on both sides** — delay *and* forwarding
//!   references carry a last-seen bin and age out after
//!   `DetectorConfig::reference_expiry_bins`, so churned links and
//!   (router, destination) pairs cannot grow the maps without bound
//!   (and links that die mid-warm-up release their warm-up buffers).
//! * **One worker pool for both detectors** — the shared engine module
//!   boxes per-shard jobs from *both* detectors and deals them
//!   round-robin onto one scoped pool inside
//!   [`pipeline::Analyzer::process_bin`], so delay-link shards and
//!   forwarding-pattern shards interleave on the same cores (§4 ∥ §5)
//!   instead of racing as two thread herds.
//! * **One worker pool for a whole fleet** — [`stream::StreamRouter`]
//!   stages every member analyzer's bin first, then runs ALL streams'
//!   shard jobs on one pool: stream A's delay shards interleave with
//!   stream B's forwarding shards. Per-stream state stays per-stream;
//!   the merged [`stream::FleetReport`] sums per-AS severities across
//!   streams and normalizes them against a fleet-level baseline. See
//!   `src/README.md` for the architecture and the full determinism
//!   contract.
//! * **Cross-bin pipelining** — the depth-2 pipelined executor
//!   ([`pipeline::Analyzer::pipelined`] →
//!   [`pipeline::PipelinedDriver`]; fleet twin
//!   [`stream::StreamRouter::pipelined`]) overlaps bin *n+1*'s scatter
//!   chunks with bin *n*'s shard jobs as one two-lane wave on the same
//!   herd: the arenas double-buffer their chunk lanes, intern epochs
//!   advance only at the serial merge fence between waves, and
//!   compaction sweeps are fenced into drained gaps. Reports emerge
//!   strictly in bin order, byte-identical to the serial schedule.
//! * **Radix grouping** — the per-shard grouping sort runs a stable
//!   LSD radix sort over the packed `u64` run keys
//!   (`pinpoint_stats::sort_by_u64_key`): an XOR-diff pre-pass skips
//!   the constant byte digits packed ids leave dead, bails out on
//!   already-sorted shards, and hands nearly-sorted shards (the
//!   k-ascending-runs shape a chunked gather produces) to the standard
//!   library's run-adaptive stable merge — so only genuinely shuffled
//!   shards pay counting passes, where radix beats the comparison sort
//!   2–4×. Stability replaces the explicit gather-order tiebreak, and
//!   `DetectorConfig::radix_min_keys` keeps every path selectable
//!   (0 = auto, 1 = always, `usize::MAX` = never).
//! * **Selection, not sorting** — per-link characterization fetches
//!   the median and both Wilson-rank CI bounds with ONE partition-based
//!   multiselect (`median_ci_select_ranks`) instead of a full sort or
//!   three independent quickselects; the Wilson rank bounds (a pure
//!   function of pool size) are memoized per shard, and balanced links
//!   (the overwhelming majority) are characterized **zero-copy**: their
//!   samples sit contiguously in the shard pool after grouping, so
//!   selection permutes that region in place instead of copying into a
//!   scratch buffer.
//! * **Serial schedule on serial hardware** — `engine::resolve_schedule`
//!   collapses pipeline depth 2 to 1 when the worker herd has one
//!   thread: there is nothing to overlap, and the two-lane schedule
//!   would only pay its lane ping-pong. Byte-identical output; only the
//!   report cadence changes.
//! * **Determinism** — per-link randomness is derived from
//!   `(seed, link, bin)`, job outputs merge in job order (never
//!   completion order), alarms get a final total-order sort, ingestion
//!   follows the chunk-order rule, and pipelining follows the
//!   merge-fence rule, so output is byte-for-byte identical for any
//!   thread count, any scatter chunk size, and any pipeline depth. The
//!   original single-threaded paths are kept behind
//!   [`pipeline::Analyzer::process_bin_sequential`] /
//!   [`stream::StreamRouter::process_bin_sequential`], and
//!   `tests/engine_parity.rs` + `tests/forwarding_parity.rs` +
//!   `tests/stream_parity.rs` + `tests/ingest_parity.rs` +
//!   `tests/pipeline_overlap_parity.rs` prove equivalence across
//!   scenarios, seeds, thread counts, chunk sizes, and depths (re-run
//!   in CI under a `PINPOINT_THREADS` ∈ {1, 2, 4, 8} ×
//!   `PINPOINT_CHUNK` ∈ {3, default} × `PINPOINT_PIPELINE` ∈ {2, 1} ×
//!   `PINPOINT_RADIX` ∈ {on, off} matrix on a multi-core runner).
//!
//! Benchmarks: `cargo bench -p pinpoint-bench` (criterion-style suite,
//! includes parallel-vs-sequential engine benches) and
//! `cargo run --release -p pinpoint-bench --bin pipeline_bench`, which
//! writes throughput + speedup numbers to `BENCH_pipeline.json` — seven
//! workloads: faithful simulator bin, delay-heavy, forwarding-heavy, a
//! mixed bin loading both shard pipelines in one combined pass, a
//! three-stream fleet bin pooled through the `StreamRouter`, a
//! scatter-dominated `ingest_heavy` bin isolating the chunked-ingestion
//! layer (with its zero-steady-state-insertion guarantee asserted every
//! run), and a `pipelined_stream` of bins timing the cross-bin executor
//! at depth 1 vs depth 2 — so the perf trajectory is tracked PR over PR
//! (`--check` turns a run into a regression gate against the committed
//! numbers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod baseline;
pub mod config;
pub mod diffrtt;
pub(crate) mod engine;
pub mod forwarding;
pub mod graph;
pub mod ingest;
pub mod pipeline;
pub mod render;
pub mod sanitize;
pub mod session;
pub mod snapshot;
pub mod stream;

pub use aggregate::{EmpathyExtractor, EventTable, FleetEvent};
pub use config::DetectorConfig;
pub use diffrtt::{DelayAlarm, DelayDetector};
pub use forwarding::{ForwardingAlarm, ForwardingDetector, NextHop};
pub use ingest::IngestStats;
pub use pipeline::{Analyzer, BinReport, PipelinedDriver};
pub use sanitize::SanitizeStats;
pub use session::{AnalysisSession, AnalyzerSession, BinSource, FleetSession};
pub use snapshot::SnapshotError;
pub use stream::{FleetPipelinedDriver, FleetReport, StreamId, StreamRouter};
