//! # pinpoint-core
//!
//! The paper's contribution: detection of delay changes and forwarding
//! anomalies from large-scale traceroute measurements, and AS-level
//! aggregation into event magnitudes.
//!
//! *Fontugne, Aben, Pelsser, Bush — "Pinpointing Delay and Forwarding
//! Anomalies Using Large-Scale Traceroute Measurements", IMC 2017.*
//!
//! ## Architecture
//!
//! ```text
//!   TracerouteRecord stream (pinpoint-atlas, or your own Atlas feed)
//!        │ 1-hour bins
//!        ▼
//!   ┌──────────────────────────┐   ┌──────────────────────────────┐
//!   │ diffrtt: differential    │   │ forwarding: per-(router,dst) │
//!   │ RTT per IP link,         │   │ next-hop patterns, Pearson   │
//!   │ ≥3-AS + entropy filter,  │   │ correlation vs smoothed      │
//!   │ median + Wilson CI vs    │   │ reference, per-hop           │
//!   │ smoothed reference (§4)  │   │ responsibility scores (§5)   │
//!   └───────────┬──────────────┘   └───────────────┬──────────────┘
//!               │ DelayAlarm(d(Δ))                 │ ForwardingAlarm(ρ, rᵢ)
//!               ▼                                  ▼
//!   ┌──────────────────────────────────────────────────────────────┐
//!   │ aggregate: IP→AS longest-prefix match, per-AS severity time  │
//!   │ series, magnitude = sliding median/MAD normalization (§6)    │
//!   └──────────────────────────────────────────────────────────────┘
//!               │                                  │
//!               ▼                                  ▼
//!        AS delay magnitude                AS forwarding magnitude
//!               └────────────── graph: alarm connected components
//!                               around an address (Fig. 8 / Fig. 12)
//! ```
//!
//! [`pipeline::Analyzer`] wires the stages together for both offline batch
//! runs and the §8 streaming ("Internet Health Report") mode. The
//! [`baseline`] module carries the non-robust comparison detectors used by
//! the ablation benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod baseline;
pub mod config;
pub mod diffrtt;
pub mod forwarding;
pub mod graph;
pub mod pipeline;

pub use config::DetectorConfig;
pub use diffrtt::{DelayAlarm, DelayDetector};
pub use forwarding::{ForwardingAlarm, ForwardingDetector, NextHop};
pub use pipeline::{Analyzer, BinReport};
