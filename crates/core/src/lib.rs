//! # pinpoint-core
//!
//! The paper's contribution: detection of delay changes and forwarding
//! anomalies from large-scale traceroute measurements, and AS-level
//! aggregation into event magnitudes.
//!
//! *Fontugne, Aben, Pelsser, Bush — "Pinpointing Delay and Forwarding
//! Anomalies Using Large-Scale Traceroute Measurements", IMC 2017.*
//!
//! ## Architecture
//!
//! ```text
//!   TracerouteRecord stream (pinpoint-atlas, or your own Atlas feed)
//!        │ 1-hour bins
//!        ▼
//!   ┌──────────────────────────┐   ┌──────────────────────────────┐
//!   │ diffrtt: differential    │   │ forwarding: per-(router,dst) │
//!   │ RTT per IP link,         │   │ next-hop patterns, Pearson   │
//!   │ ≥3-AS + entropy filter,  │   │ correlation vs smoothed      │
//!   │ median + Wilson CI vs    │   │ reference, per-hop           │
//!   │ smoothed reference (§4)  │   │ responsibility scores (§5)   │
//!   └───────────┬──────────────┘   └───────────────┬──────────────┘
//!               │ DelayAlarm(d(Δ))                 │ ForwardingAlarm(ρ, rᵢ)
//!               ▼                                  ▼
//!   ┌──────────────────────────────────────────────────────────────┐
//!   │ aggregate: IP→AS longest-prefix match, per-AS severity time  │
//!   │ series, magnitude = sliding median/MAD normalization (§6)    │
//!   └──────────────────────────────────────────────────────────────┘
//!               │                                  │
//!               ▼                                  ▼
//!        AS delay magnitude                AS forwarding magnitude
//!               └────────────── graph: alarm connected components
//!                               around an address (Fig. 8 / Fig. 12)
//! ```
//!
//! [`pipeline::Analyzer`] wires the stages together for both offline batch
//! runs and the §8 streaming ("Internet Health Report") mode. The
//! [`baseline`] module carries the non-robust comparison detectors used by
//! the ablation benches.
//!
//! ## Performance
//!
//! The per-bin hot path is a sharded, parallel, allocation-lean engine
//! (the paper's system must keep pace with the full Atlas stream, §8):
//!
//! * **Flat sample arena** — differential RTTs are staged as 16-byte
//!   `(link, probe, value)` rows directly in the owning link's shard
//!   ([`diffrtt::SampleArena`]), then each shard sorts its rows by one
//!   u64 key and lays them out contiguously. Every buffer is reused
//!   across bins: a steady stream settles into zero steady-state
//!   allocation.
//! * **Sharded per-link pipeline** — links (and their smoothed
//!   references) are assigned to 32 shards by a stable hash; a scoped
//!   thread pool walks whole shards, so reference mutation needs no
//!   locks. `DetectorConfig::threads` picks the worker count (0 = all
//!   cores).
//! * **Selection, not sorting** — per-link characterization uses
//!   `median_ci_select` (three quickselects) instead of a full sort,
//!   and the delay and forwarding detectors run concurrently inside
//!   [`pipeline::Analyzer::process_bin`].
//! * **Determinism** — per-link randomness is derived from
//!   `(seed, link, bin)` and alarms get a final total-order sort, so
//!   output is byte-for-byte identical for any thread count. The
//!   original single-threaded path is kept as
//!   [`pipeline::Analyzer::process_bin_sequential`], and
//!   `tests/engine_parity.rs` proves equivalence across scenarios,
//!   seeds, and thread counts.
//!
//! Benchmarks: `cargo bench -p pinpoint-bench` (criterion-style suite,
//! includes parallel-vs-sequential engine benches) and
//! `cargo run --release -p pinpoint-bench --bin pipeline_bench`, which
//! writes throughput + speedup numbers to `BENCH_pipeline.json` so the
//! perf trajectory is tracked PR over PR.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod baseline;
pub mod config;
pub mod diffrtt;
pub mod forwarding;
pub mod graph;
pub mod pipeline;

pub use config::DetectorConfig;
pub use diffrtt::{DelayAlarm, DelayDetector};
pub use forwarding::{ForwardingAlarm, ForwardingDetector, NextHop};
pub use pipeline::{Analyzer, BinReport};
