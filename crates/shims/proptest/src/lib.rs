//! Offline, deterministic stand-in for the subset of `proptest` this
//! workspace uses.
//!
//! The build environment cannot reach crates.io, so the real `proptest` is
//! unavailable. This shim keeps the property tests running (rather than
//! deleting them) with the same source syntax:
//!
//! * `proptest! { #[test] fn name(x in strategy, ...) { body } }`,
//!   optionally with `#![proptest_config(ProptestConfig::with_cases(n))]`;
//! * range strategies over integers and floats (`0u32..1000`,
//!   `0.0f64..=1.0`);
//! * `prop::collection::vec(elem, len_range)`;
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Inputs are generated from a SplitMix64 stream seeded by the test's module
//! path and name, so every run of a given test binary explores the same
//! cases — no shrinking, but failures are exactly reproducible. Scalar
//! strategies yield their range endpoints in the first cases, and
//! collection elements are forced to an endpoint with probability 1/8,
//! so boundary values get coverage at both levels.

use std::ops::{Range, RangeInclusive};

/// Number of cases run when no `proptest_config` is given.
pub const DEFAULT_CASES: u32 = 256;

/// Runner configuration (API-compatible subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator driving the shim (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
    /// Index of the case currently being generated (drives edge cases).
    pub case: u32,
}

impl TestRng {
    /// Seed from an arbitrary label (test path) via FNV-1a.
    pub fn from_label(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h, case: 0 }
    }

    /// Next raw 64-bit output.
    pub fn next_raw(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in `[0, n)`; `n` must be non-zero.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        loop {
            let x = self.next_raw();
            let m = (x as u128).wrapping_mul(n as u128);
            if (m as u64) >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A value generator (API-compatible subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // First two cases pin the boundaries.
                    match rng.case {
                        0 => self.start,
                        1 => self.end - 1,
                        _ => {
                            let span = (self.end as i128 - self.start as i128) as u64;
                            (self.start as i128 + rng.next_below(span) as i128) as $t
                        }
                    }
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    match rng.case {
                        0 => *self.start(),
                        1 => *self.end(),
                        _ => {
                            let span =
                                (*self.end() as i128 - *self.start() as i128) as u64;
                            if span == u64::MAX {
                                rng.next_raw() as $t
                            } else {
                                (*self.start() as i128 + rng.next_below(span + 1) as i128)
                                    as $t
                            }
                        }
                    }
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        match rng.case {
            0 => self.start,
            _ => self.start + (self.end - self.start) * rng.next_f64(),
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        match rng.case {
            0 => *self.start(),
            1 => *self.end(),
            _ => self.start() + (self.end() - self.start()) * rng.next_f64(),
        }
    }
}

// Tuple strategies: each component generates independently, like
// proptest's tuple composition — `(0u64..50, 0u32..8)` yields pairs.
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of values from `elem`, with a length drawn
    /// from `len` (half-open, like proptest's size ranges).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(elem, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            // First case pins the minimum length (exercises empty vecs when
            // the range allows them); afterwards lengths are uniform.
            let n = match rng.case {
                0 => self.len.start,
                1 => self.len.end - 1,
                _ => {
                    self.len.start + rng.next_below((self.len.end - self.len.start) as u64) as usize
                }
            };
            // Element generation must not inherit the vec-level case
            // pinning (every element of case 0 would be the range
            // minimum), but boundary values still need coverage: each
            // element independently has a 1-in-8 chance of being forced
            // to one of its strategy's endpoint cases.
            let case = rng.case;
            let out = (0..n)
                .map(|_| {
                    rng.case = if rng.next_below(8) == 0 {
                        (rng.next_raw() & 1) as u32
                    } else {
                        u32::MAX
                    };
                    self.elem.generate(rng)
                })
                .collect();
            rng.case = case;
            out
        }
    }
}

/// The `prop` path alias used via the prelude (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Assert inside a property (panics with the case's inputs on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_label(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    __rng.case = __case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// The `proptest!` test-definition macro (deterministic shim).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::from_label("x");
        let mut b = crate::TestRng::from_label("x");
        for _ in 0..32 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..10, x in -2.0f64..2.0, p in 0.0f64..=1.0) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((0.0..=1.0).contains(&p));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0u32..5, 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }
}
