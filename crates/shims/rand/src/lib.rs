//! Offline stand-in for the parts of `rand` the workspace uses.
//!
//! `pinpoint-stats::rng::SplitMix64` implements [`RngCore`] so it can plug
//! into the `rand` ecosystem when the real crate is available; this shim
//! provides an API-compatible trait so the impl compiles without network
//! access to crates.io.

use std::fmt;

/// Error type mirroring `rand::Error` (only ever constructed by fallible
/// external generators, which this workspace has none of).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core trait of the `rand` ecosystem (API-compatible subset).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill (infallible for in-process generators).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}
