//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! crates.io is unreachable from the build environment, so this shim
//! provides an API-compatible measurement harness: `criterion_group!` /
//! `criterion_main!`, `Criterion::bench_function`, `Bencher::iter` and
//! `Bencher::iter_batched`. It is a real benchmark runner — each benchmark
//! is warmed up, timed over `sample_size` samples, and reported as
//! min/median/mean nanoseconds per iteration on stdout — just without
//! criterion's statistical regression machinery and HTML reports.
//!
//! Machine-readable output: when the `CRITERION_JSON` environment variable
//! names a file, one JSON object per benchmark
//! (`{"name":…,"median_ns":…,"mean_ns":…,"min_ns":…,"samples":…}`) is
//! appended to it, which the `pipeline_bench` binary uses to build
//! `BENCH_pipeline.json`.

use std::io::Write as _;
use std::time::{Duration, Instant};

/// How a batched benchmark's per-iteration state is sized (API-compatible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; many iterations per batch.
    SmallInput,
    /// Large setup output; one iteration per batch.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// One measured sample series.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark id.
    pub name: String,
    /// Per-iteration wall time of each sample, in nanoseconds.
    pub sample_ns: Vec<f64>,
}

impl Measurement {
    /// Median nanoseconds per iteration.
    pub fn median_ns(&self) -> f64 {
        let mut s = self.sample_ns.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = s.len();
        if n == 0 {
            return f64::NAN;
        }
        if n % 2 == 1 {
            s[n / 2]
        } else {
            (s[n / 2 - 1] + s[n / 2]) / 2.0
        }
    }

    /// Mean nanoseconds per iteration.
    pub fn mean_ns(&self) -> f64 {
        if self.sample_ns.is_empty() {
            return f64::NAN;
        }
        self.sample_ns.iter().sum::<f64>() / self.sample_ns.len() as f64
    }

    /// Fastest sample.
    pub fn min_ns(&self) -> f64 {
        self.sample_ns.iter().cloned().fold(f64::INFINITY, f64::min)
    }
}

/// The benchmark driver (API-compatible subset of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Define and immediately run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement_time: self.measurement_time,
            sample_ns: Vec::new(),
        };
        f(&mut b);
        let m = Measurement {
            name: name.to_string(),
            sample_ns: b.sample_ns,
        };
        println!(
            "{:<44} min {:>12.0} ns  median {:>12.0} ns  mean {:>12.0} ns  ({} samples)",
            m.name,
            m.min_ns(),
            m.median_ns(),
            m.mean_ns(),
            m.sample_ns.len()
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(
                    file,
                    "{{\"name\":\"{}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{}}}",
                    m.name,
                    m.median_ns(),
                    m.mean_ns(),
                    m.min_ns(),
                    m.sample_ns.len()
                );
            }
        }
        self
    }
}

/// Per-benchmark timing context handed to the closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement_time: Duration,
    sample_ns: Vec<f64>,
}

impl Bencher {
    /// Time a routine with no per-iteration setup.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(routine());
            iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
        // Size each sample so the whole run fits the measurement budget.
        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((budget_ns / per_iter.max(1.0)) as u64).max(1);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.sample_ns
                .push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    /// Time a routine with untimed per-iteration setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One warm-up pass, then one timed iteration per sample (setup
        // excluded from the timing).
        std::hint::black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.sample_ns.push(t.elapsed().as_nanos() as f64);
        }
    }
}

/// Define a group of benchmark functions (API-compatible subset).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running every group (API-compatible subset).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut ran = 0u64;
        c.bench_function("shim_smoke", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut c = Criterion::default()
            .sample_size(4)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("shim_batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn measurement_stats() {
        let m = Measurement {
            name: "x".into(),
            sample_ns: vec![3.0, 1.0, 2.0],
        };
        assert_eq!(m.median_ns(), 2.0);
        assert_eq!(m.mean_ns(), 2.0);
        assert_eq!(m.min_ns(), 1.0);
    }
}
