//! No-op derive macros standing in for `serde_derive`.
//!
//! The build environment has no network access to crates.io, so the real
//! `serde` cannot be vendored. The data model only *declares* the derives
//! (its interchange format is the hand-rolled JSON codec in
//! `pinpoint-model::json`), so emitting no impls is sufficient: nothing in
//! the workspace calls `Serialize`/`Deserialize` trait methods.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
