//! Offline stand-in for the `serde` facade.
//!
//! Re-exports the no-op derive macros so `use serde::{Deserialize,
//! Serialize}` and `#[derive(Serialize, Deserialize)]` compile unchanged.
//! The workspace's real interchange format is `pinpoint-model::json`, which
//! never touches serde traits, so empty derives lose nothing.

pub use serde_derive::{Deserialize, Serialize};
