//! Durable checkpoint files: crash-safe persistence of analyzer state.
//!
//! A checkpoint is one file holding `frame(last_bin ‖ snapshot)`, where
//! `frame` is [`pinpoint_core::snapshot::frame`]'s length + CRC-32
//! envelope, `last_bin` is the id (u64 LE) of the last bin folded into
//! the snapshot, and `snapshot` is the byte-stable
//! `Analyzer::snapshot()` / `StreamRouter::snapshot()` payload. Files
//! are written to a temporary name and atomically renamed into place,
//! so a `kill -9` mid-write leaves at worst a stray `.tmp` — never a
//! half-valid checkpoint. On resume, [`CheckpointStore::load_latest`]
//! walks the directory newest-first and returns the first file whose
//! frame verifies; truncated or corrupt files are skipped, not fatal.

use pinpoint_core::snapshot::{frame, unframe};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// File extension of a completed checkpoint.
const EXT: &str = "pnck";
/// Completed checkpoints kept on disk; older ones are pruned after each
/// successful save so the directory stays bounded.
const KEEP: usize = 4;

/// A directory of framed, atomically-written checkpoint files.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// A store rooted at `dir` (created on the first save).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointStore { dir: dir.into() }
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file_name(last_bin: u64) -> String {
        format!("ckpt-{last_bin:012}.{EXT}")
    }

    /// Durably save a checkpoint covering every bin through `last_bin`.
    /// Write-to-temp + rename makes the appearance of the final name
    /// atomic; the frame's length + checksum makes any torn write
    /// detectable on load.
    pub fn save(&self, last_bin: u64, snapshot: &[u8]) -> io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let mut payload = Vec::with_capacity(8 + snapshot.len());
        payload.extend_from_slice(&last_bin.to_le_bytes());
        payload.extend_from_slice(snapshot);
        let bytes = frame(&payload);
        let path = self.dir.join(Self::file_name(last_bin));
        let tmp = self.dir.join(format!("{}.tmp", Self::file_name(last_bin)));
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, &path)?;
        self.prune();
        Ok(path)
    }

    /// Completed checkpoint files, oldest first (lexicographic order of
    /// the zero-padded names IS bin order).
    fn entries(&self) -> Vec<PathBuf> {
        let Ok(read) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut files: Vec<PathBuf> = read
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.extension().is_some_and(|e| e == EXT)
                    && p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("ckpt-"))
            })
            .collect();
        files.sort();
        files
    }

    /// Drop all but the newest [`KEEP`] checkpoints (best-effort).
    fn prune(&self) {
        let files = self.entries();
        for stale in files.iter().rev().skip(KEEP) {
            let _ = fs::remove_file(stale);
        }
    }

    /// Load the newest checkpoint whose frame verifies, returning
    /// `(last_bin, snapshot_bytes)`. Corrupt, truncated, or unreadable
    /// files are skipped — a crash can only ever cost the tail of the
    /// checkpoint history, never the ability to resume.
    pub fn load_latest(&self) -> Option<(u64, Vec<u8>)> {
        for path in self.entries().into_iter().rev() {
            let Ok(bytes) = fs::read(&path) else { continue };
            let Ok(payload) = unframe(&bytes) else {
                continue;
            };
            if payload.len() < 8 {
                continue;
            }
            let last_bin = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
            return Some((last_bin, payload[8..].to_vec()));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pinpoint-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_returns_the_newest() {
        let dir = scratch("roundtrip");
        let store = CheckpointStore::new(&dir);
        store.save(3, b"state-at-3").unwrap();
        store.save(7, b"state-at-7").unwrap();
        assert_eq!(store.load_latest(), Some((7, b"state-at-7".to_vec())));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_truncated_files_fall_back_to_older_valid() {
        let dir = scratch("corrupt");
        let store = CheckpointStore::new(&dir);
        store.save(2, b"good").unwrap();
        let newest = store.save(9, b"doomed").unwrap();
        // Flip a payload byte: the CRC must reject the newest file.
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        assert_eq!(store.load_latest(), Some((2, b"good".to_vec())));
        // Truncate it instead (a torn write): same fallback.
        fs::write(&newest, &fs::read(&newest).unwrap()[..5]).unwrap();
        assert_eq!(store.load_latest(), Some((2, b"good".to_vec())));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_or_missing_dir_is_none() {
        let dir = scratch("empty");
        let store = CheckpointStore::new(&dir);
        assert_eq!(store.load_latest(), None);
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(store.load_latest(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_keeps_the_directory_bounded() {
        let dir = scratch("prune");
        let store = CheckpointStore::new(&dir);
        for bin in 0..10 {
            store.save(bin, b"s").unwrap();
        }
        assert!(store.entries().len() <= KEEP);
        assert_eq!(store.load_latest().unwrap().0, 9);
        let _ = fs::remove_dir_all(&dir);
    }
}
