//! A std-only HTTP/1.1 surface over the daemon state.
//!
//! No hyper/axum — this environment has no registry access, so the
//! server is a hand-rolled `TcpListener`: one accept thread feeds
//! connections into a [`BoundedQueue`] drained by a pool of worker
//! threads (so ≥ 8 concurrent clients are served in parallel while the
//! accept loop never blocks on a slow client). Every response is
//! `Connection: close` JSON; report bodies are served straight from the
//! immutable `Arc<String>` cache — zero re-rendering, identical bytes
//! for every client.
//!
//! Routes:
//!
//! | Route | Body |
//! |---|---|
//! | `GET /health` | phase, readiness, bin counters |
//! | `GET /bins` | reported bins with headline counters |
//! | `GET /bins/{id}/report` | the cached full report of one bin |
//! | `GET /bins/{id}/events` | the cached event deltas of one bin |
//! | `GET /events` | ranked fleet events as of the latest bin |
//! | `GET /events/{id}` | current state of one event |
//! | `GET /asn/{id}/timeline` | per-bin severity/magnitude series of one AS |
//! | `GET /alarms/graph[?bin=N]` | the cached alarm graph (default: latest bin) |
//! | `GET /stats` | ingest + sanitize counters, queue gauges, latencies |
//! | `POST /shutdown` | request graceful drain |

use crate::queue::BoundedQueue;
use crate::state::{QueueGauge, ServiceState};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything a worker needs to answer a request.
pub(crate) struct Router {
    pub state: Arc<ServiceState>,
    /// Live (collect, report) queue gauges.
    pub gauges: Box<dyn Fn() -> (QueueGauge, QueueGauge) + Send + Sync>,
    /// Invoked on `POST /shutdown` (stops the collector; the pipeline
    /// then drains on its own).
    pub on_shutdown: Box<dyn Fn() + Send + Sync>,
    /// Total wall-clock budget for reading one request head. A client
    /// trickling bytes (slow loris) is answered `408` when the budget
    /// runs out, freeing the worker — per-read timeouts alone would let
    /// one byte every few seconds hold a worker forever.
    pub read_deadline: Duration,
}

/// Largest accepted request head; beyond this the reply is `431`.
const MAX_HEAD_BYTES: usize = 8192;

pub(crate) struct HttpServer {
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<BoundedQueue<TcpStream>>,
    stopping: Arc<AtomicBool>,
}

impl HttpServer {
    pub(crate) fn spawn(addr: &str, workers: usize, router: Router) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let workers = workers.max(1);
        let conns = Arc::new(BoundedQueue::new(workers * 2));
        let stopping = Arc::new(AtomicBool::new(false));
        let router = Arc::new(router);

        let mut pool = Vec::with_capacity(workers);
        for _ in 0..workers {
            let conns = Arc::clone(&conns);
            let router = Arc::clone(&router);
            pool.push(std::thread::spawn(move || {
                while let Ok(stream) = conns.pop() {
                    // A broken client connection only affects that client.
                    let _ = serve_one(stream, &router);
                }
            }));
        }

        let accept = {
            let conns = Arc::clone(&conns);
            let stopping = Arc::clone(&stopping);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if conns.push(stream).is_err() {
                        break;
                    }
                }
            })
        };

        Ok(HttpServer {
            addr,
            accept: Some(accept),
            workers: pool,
            conns,
            stopping,
        })
    }

    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain queued connections, join every thread.
    pub(crate) fn stop(&mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.conns.close();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Read one request (first line + headers), route it, write the reply.
fn serve_one(mut stream: TcpStream, router: &Router) -> std::io::Result<()> {
    let started = std::time::Instant::now();
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        if buf.len() > MAX_HEAD_BYTES {
            return respond(&mut stream, 431, "{\"error\":\"headers too large\"}");
        }
        // Per-read timeout = whatever is left of the TOTAL budget, so a
        // byte-at-a-time client cannot reset the clock with each byte.
        let remaining = router.read_deadline.saturating_sub(started.elapsed());
        if remaining.is_zero() {
            return respond(
                &mut stream,
                408,
                "{\"error\":\"request head read timed out\"}",
            );
        }
        stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return respond(
                    &mut stream,
                    408,
                    "{\"error\":\"request head read timed out\"}",
                );
            }
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return respond(&mut stream, 400, "{\"error\":\"malformed request\"}");
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let (status, body) = route(router, method, path, query);
    respond(&mut stream, status, &body)
}

fn route(router: &Router, method: &str, path: &str, query: Option<&str>) -> (u16, String) {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (method, segments.as_slice()) {
        ("GET", []) => (
            200,
            concat!(
                "{\"service\":\"pinpointd\",\"endpoints\":[\"/health\",\"/bins\",",
                "\"/bins/{id}/report\",\"/bins/{id}/events\",\"/events\",",
                "\"/events/{id}\",\"/asn/{id}/timeline\",\"/alarms/graph\",",
                "\"/stats\",\"POST /shutdown\"]}"
            )
            .to_string(),
        ),
        ("GET", ["health"]) => (200, router.state.health_json()),
        ("GET", ["bins"]) => (200, router.state.bins_json()),
        ("GET", ["bins", id, "report"]) => match id.parse::<u64>() {
            Ok(bin) => match router.state.report(bin) {
                Some(report) => (200, report.as_ref().clone()),
                None => (404, format!("{{\"error\":\"bin {bin} not reported\"}}")),
            },
            Err(_) => (400, "{\"error\":\"bin id must be an integer\"}".to_string()),
        },
        ("GET", ["bins", id, "events"]) => match id.parse::<u64>() {
            Ok(bin) => match router.state.bin_events(bin) {
                Some(events) => (200, events.as_ref().clone()),
                None => (404, format!("{{\"error\":\"bin {bin} not reported\"}}")),
            },
            Err(_) => (400, "{\"error\":\"bin id must be an integer\"}".to_string()),
        },
        ("GET", ["events"]) => (200, router.state.events_json().as_ref().clone()),
        ("GET", ["events", id]) => match id.parse::<u64>() {
            Ok(event) => match router.state.event_json(event) {
                Some(body) => (200, body.as_ref().clone()),
                None => (404, format!("{{\"error\":\"event {event} not reported\"}}")),
            },
            Err(_) => (
                400,
                "{\"error\":\"event id must be an integer\"}".to_string(),
            ),
        },
        ("GET", ["asn", id, "timeline"]) => match id.parse::<u32>() {
            Ok(asn) => match router.state.timeline_json(asn) {
                Some(body) => (200, body),
                None => (404, format!("{{\"error\":\"AS{asn} not tracked\"}}")),
            },
            Err(_) => (400, "{\"error\":\"asn must be an integer\"}".to_string()),
        },
        ("GET", ["alarms", "graph"]) => {
            let bin = query.and_then(|q| {
                q.split('&')
                    .find_map(|kv| kv.strip_prefix("bin="))
                    .and_then(|v| v.parse::<u64>().ok())
            });
            match router.state.graph(bin) {
                Some(graph) => (200, graph.as_ref().clone()),
                None => (404, "{\"error\":\"no bin reported yet\"}".to_string()),
            }
        }
        ("GET", ["stats"]) => {
            let (collect, report) = (router.gauges)();
            (200, router.state.stats_json(collect, report))
        }
        ("POST", ["shutdown"]) => {
            (router.on_shutdown)();
            (200, "{\"ok\":true,\"phase\":\"draining\"}".to_string())
        }
        _ => (404, "{\"error\":\"not found\"}".to_string()),
    }
}

fn respond(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        431 => "Request Header Fields Too Large",
        _ => "Error",
    };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}
