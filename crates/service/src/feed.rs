//! Fault-aware feed sources for the collector.
//!
//! The offline entry points consume a plain
//! [`BinSource`](pinpoint_core::session::BinSource) — an infallible
//! in-order bin iterator. A live deployment's feed is neither: it
//! stalls, disconnects, and (after reconnects) replays duplicated or
//! out-of-order bins. [`RecoverableSource`] is the contract the
//! collector actually consumes: a stream of [`FeedSignal`]s where
//! transport faults are explicit markers the collector answers with
//! capped-exponential-backoff retries, and bin-stream faults
//! (duplicates, reordering) are handled by the collector's own
//! monotonicity rule — a bin whose id is ≤ the last accepted id is
//! rejected, exactly the rule `netsim::RecoveredFeed` applies, so the
//! daemon over a faulty feed byte-matches an offline run over the
//! recovered feed.

use pinpoint_core::session::BinSource;
use pinpoint_model::BinId;

/// One observation from a live feed: a bin, or a transport fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeedSignal<F> {
    /// A bin arrived (possibly duplicated, reordered, or truncated —
    /// the collector's monotonicity rule sorts that out).
    Bin(BinId, F),
    /// The feed stalled for roughly this many bin intervals before the
    /// next delivery. Informational: the collector records it and keeps
    /// waiting.
    Stall(u64),
    /// The transport dropped. The collector sleeps one backoff step
    /// (capped exponential) and polls again.
    Disconnect,
}

/// A feed that can signal transport faults. `None` means the stream is
/// over for good (graceful end), not a fault.
pub trait RecoverableSource: Send + 'static {
    /// What one bin's payload looks like (`Vec<TracerouteRecord>` solo,
    /// `Vec<Vec<TracerouteRecord>>` fleet).
    type Feed;

    /// The next signal, blocking until one is available.
    fn next_signal(&mut self) -> Option<FeedSignal<Self::Feed>>;
}

/// An iterator of [`FeedSignal`]s lifted into a [`RecoverableSource`]
/// — the bridge for `netsim::FaultyFeed` (map its `FeedEvent`s into
/// signals, wrap the iterator in this).
pub struct SignalFeed<I>(pub I);

impl<I, F> RecoverableSource for SignalFeed<I>
where
    I: Iterator<Item = FeedSignal<F>> + Send + 'static,
{
    type Feed = F;

    fn next_signal(&mut self) -> Option<FeedSignal<F>> {
        self.0.next()
    }
}

/// A fault-free [`BinSource`] lifted into the fault-aware contract —
/// what [`crate::Daemon::spawn`] wraps a plain feed in.
pub struct SteadyFeed<F>(pub F);

impl<F> RecoverableSource for SteadyFeed<F>
where
    F: BinSource + Send + 'static,
{
    type Feed = F::Feed;

    fn next_signal(&mut self) -> Option<FeedSignal<F::Feed>> {
        self.0
            .next_bin()
            .map(|(bin, feed)| FeedSignal::Bin(bin, feed))
    }
}
