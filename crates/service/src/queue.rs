//! A bounded MPMC queue with blocking backpressure.
//!
//! The daemon's stages (collector → executor → reporter) hand bins to
//! each other through these queues. The contract that keeps the service
//! memory-bounded: [`BoundedQueue::push`] **blocks** while the queue is
//! full, so a slow consumer stalls its producer instead of letting the
//! backlog grow — at a full stop the whole pipeline holds at most
//! `collect_capacity + report_capacity + depth` bins, ever
//! (`tests/service_parity.rs` asserts the bound under a deliberately
//! stalled reporter).
//!
//! Two ways a queue ends, both of which wake every blocked thread:
//!
//! * [`BoundedQueue::close`] — graceful end-of-stream: pushes fail fast
//!   with [`Closed`], pops drain the residue before reporting
//!   [`Closed`]. Shutdown is a *drain*, not a drop.
//! * [`BoundedQueue::poison`] — a peer stage died (panicked): the
//!   residue is discarded and *both* sides fail immediately, so a dead
//!   stage propagates shutdown instead of leaving its peer blocked on a
//!   full push or an empty pop forever (the supervisor in
//!   [`crate::daemon`] poisons both queues from its `catch_unwind`
//!   handler).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// The error of pushing to or popping from a queue that was closed or
/// poisoned. For a rejected `push` the item rides along so the producer
/// can keep or drop it; a failed `pop` carries `()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed<T = ()>(pub T);

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// A peer stage died: discard the residue, fail both sides now.
    poisoned: bool,
    /// High-water mark of `items.len()` over the queue's lifetime.
    peak: usize,
}

/// A bounded multi-producer multi-consumer queue (see the [module
/// docs](self) for the backpressure and close/poison contracts).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                poisoned: false,
                peak: 0,
            }),
            capacity: capacity.max(1),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueue one item, **blocking while the queue is full** — this is
    /// the backpressure edge. Returns the item back as `Err(Closed)` if
    /// the queue was closed or poisoned (before or while waiting).
    pub fn push(&self, item: T) -> Result<(), Closed<T>> {
        let mut inner = self.inner.lock().unwrap();
        while inner.items.len() >= self.capacity && !inner.closed {
            inner = self.not_full.wait(inner).unwrap();
        }
        if inner.closed {
            return Err(Closed(item));
        }
        inner.items.push_back(item);
        inner.peak = inner.peak.max(inner.items.len());
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue one item, blocking while the queue is empty and open.
    /// `Err(Closed)` means closed **and** fully drained — residual items
    /// are always delivered first, which is what makes shutdown a drain
    /// rather than a drop — or poisoned, in which case the residue was
    /// already discarded.
    pub fn pop(&self) -> Result<T, Closed> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.poisoned {
                return Err(Closed(()));
            }
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Ok(item);
            }
            if inner.closed {
                return Err(Closed(()));
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Close the queue: subsequent (and blocked) pushes fail, pops drain
    /// the residue then return `Err(Closed)`. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Poison the queue: a stage died mid-stream, so the residue is
    /// garbage — discard it and fail every blocked producer *and*
    /// consumer immediately. Idempotent; implies [`BoundedQueue::close`].
    pub fn poison(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        inner.poisoned = true;
        inner.items.clear();
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Whether [`BoundedQueue::poison`] was called.
    pub fn is_poisoned(&self) -> bool {
        self.inner.lock().unwrap().poisoned
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// High-water mark of the queue depth — never exceeds
    /// [`BoundedQueue::capacity`], which is the provable-boundedness
    /// claim the service tests pin down.
    pub fn peak_depth(&self) -> usize {
        self.inner.lock().unwrap().peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_peak_tracking() {
        let q = BoundedQueue::new(4);
        for i in 0..3 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.peak_depth(), 3);
        assert_eq!(q.pop(), Ok(0));
        assert_eq!(q.pop(), Ok(1));
        q.close();
        assert_eq!(q.pop(), Ok(2), "residue drains after close");
        assert_eq!(q.pop(), Err(Closed(())));
        assert_eq!(q.peak_depth(), 3);
    }

    #[test]
    fn push_blocks_until_a_slot_frees() {
        let q = Arc::new(BoundedQueue::new(2));
        q.push(0u32).unwrap();
        q.push(1).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2))
        };
        // The producer must be parked: the queue is at capacity.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(q.len(), 2, "bounded: the blocked push must not land");
        assert_eq!(q.pop(), Ok(0));
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop(), Ok(1));
        assert_eq!(q.pop(), Ok(2));
        assert!(q.peak_depth() <= q.capacity());
    }

    #[test]
    fn close_unblocks_a_full_push() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(7u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(8))
        };
        std::thread::sleep(Duration::from_millis(50));
        q.close();
        assert_eq!(
            producer.join().unwrap(),
            Err(Closed(8)),
            "closed push hands the item back"
        );
        assert_eq!(q.pop(), Ok(7));
        assert_eq!(q.pop(), Err(Closed(())));
    }

    /// The satellite regression: a consumer that dies while its producer
    /// is blocked on a full queue used to leave the producer parked
    /// forever. Poisoning from the dying thread's unwind path frees it.
    #[test]
    fn panicked_consumer_poison_unblocks_a_full_push() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1))
        };
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                // A panicking stage's supervisor poisons its queues —
                // emulated here by a scope guard running on unwind.
                struct Poison<T>(Arc<BoundedQueue<T>>);
                impl<T> Drop for Poison<T> {
                    fn drop(&mut self) {
                        self.0.poison();
                    }
                }
                let _guard = Poison(Arc::clone(&q));
                panic!("consumer died");
            })
        };
        assert!(consumer.join().is_err(), "the consumer must have panicked");
        // Without the poison this join would deadlock (the harness would
        // time the whole test binary out); with it the push fails fast.
        assert_eq!(producer.join().unwrap(), Err(Closed(1)));
        assert!(q.is_poisoned());
    }

    #[test]
    fn poison_discards_residue_and_fails_pop() {
        let q = BoundedQueue::new(4);
        q.push(1u32).unwrap();
        q.push(2).unwrap();
        q.poison();
        assert_eq!(
            q.pop(),
            Err(Closed(())),
            "poison drops the residue — a dead stage's output is garbage"
        );
        assert!(q.is_empty());
    }

    #[test]
    fn poison_unblocks_an_empty_pop() {
        let q = Arc::new(BoundedQueue::<u32>::new(2));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(50));
        q.poison();
        assert_eq!(consumer.join().unwrap(), Err(Closed(())));
    }
}
