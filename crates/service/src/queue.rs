//! A bounded MPMC queue with blocking backpressure.
//!
//! The daemon's stages (collector → executor → reporter) hand bins to
//! each other through these queues. The contract that keeps the service
//! memory-bounded: [`BoundedQueue::push`] **blocks** while the queue is
//! full, so a slow consumer stalls its producer instead of letting the
//! backlog grow — at a full stop the whole pipeline holds at most
//! `collect_capacity + report_capacity + depth` bins, ever
//! (`tests/service_parity.rs` asserts the bound under a deliberately
//! stalled reporter). Closing the queue wakes everyone: pushes fail fast
//! and pops drain the residue before reporting end-of-stream.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// High-water mark of `items.len()` over the queue's lifetime.
    peak: usize,
}

/// A bounded multi-producer multi-consumer queue (see the [module
/// docs](self) for the backpressure contract).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                peak: 0,
            }),
            capacity: capacity.max(1),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Enqueue one item, **blocking while the queue is full** — this is
    /// the backpressure edge. Returns the item back as `Err` if the
    /// queue was closed (before or while waiting).
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        while inner.items.len() >= self.capacity && !inner.closed {
            inner = self.not_full.wait(inner).unwrap();
        }
        if inner.closed {
            return Err(item);
        }
        inner.items.push_back(item);
        inner.peak = inner.peak.max(inner.items.len());
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue one item, blocking while the queue is empty and open.
    /// `None` means closed **and** fully drained — residual items are
    /// always delivered first, which is what makes shutdown a drain
    /// rather than a drop.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Close the queue: subsequent (and blocked) pushes fail, pops drain
    /// the residue then return `None`. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// High-water mark of the queue depth — never exceeds
    /// [`BoundedQueue::capacity`], which is the provable-boundedness
    /// claim the service tests pin down.
    pub fn peak_depth(&self) -> usize {
        self.inner.lock().unwrap().peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_peak_tracking() {
        let q = BoundedQueue::new(4);
        for i in 0..3 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.peak_depth(), 3);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        q.close();
        assert_eq!(q.pop(), Some(2), "residue drains after close");
        assert_eq!(q.pop(), None);
        assert_eq!(q.peak_depth(), 3);
    }

    #[test]
    fn push_blocks_until_a_slot_frees() {
        let q = Arc::new(BoundedQueue::new(2));
        q.push(0u32).unwrap();
        q.push(1).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2))
        };
        // The producer must be parked: the queue is at capacity.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(q.len(), 2, "bounded: the blocked push must not land");
        assert_eq!(q.pop(), Some(0));
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.peak_depth() <= q.capacity());
    }

    #[test]
    fn close_unblocks_a_full_push() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(7u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(8))
        };
        std::thread::sleep(Duration::from_millis(50));
        q.close();
        assert_eq!(
            producer.join().unwrap(),
            Err(8),
            "closed push hands the item back"
        );
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }
}
