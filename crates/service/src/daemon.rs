//! The collector → executor → reporter pipeline.
//!
//! Three threads, two bounded queues:
//!
//! ```text
//!   feed (BinSource /                         ┌───────────────┐
//!    RecoverableSource)               ┌─────▶│ HTTP workers  │
//!        │ next_signal()              │      │ (cached JSON) │
//!        ▼                            │      └───────────────┘
//!   ┌───────────┐  collect queue  ┌───┴─────┐
//!   │ collector │ ───(bounded)──▶ │executor │  report queue   ┌──────────┐
//!   │  thread   │                 │ session │ ───(bounded)──▶ │ reporter │
//!   └───────────┘                 └─────────┘                 │  thread  │
//!                                                             └──────────┘
//! ```
//!
//! The collector pulls bin *n+1* from the feed while the depth-2
//! pipelined session churns bin *n*; the reporter renders each emitted
//! report **once** into the immutable cache. Both queues block their
//! producer when full (see [`crate::queue`]), so a stalled consumer
//! stalls the stage above it — backpressure all the way to the feed,
//! never unbounded growth. Graceful shutdown stops only the collector;
//! everything already collected drains through the executor and
//! reporter before the phase flips to `done`, so no collected bin goes
//! unreported.
//!
//! **Supervision.** Every stage runs under `catch_unwind`. A panicking
//! stage records its fault in the shared state, flips the phase to
//! [`Phase::Failed`] (sticky), and *poisons* both queues — blocked
//! peers fail fast instead of deadlocking, and the HTTP surface keeps
//! serving the cached reports plus a degraded `/health`.
//!
//! **Fault-aware collection.** Through [`Daemon::spawn_recovering`] the
//! collector consumes a [`RecoverableSource`]: feed disconnects are
//! retried with capped exponential backoff, stalls are recorded, and
//! duplicate or out-of-order bins are rejected by the monotonicity rule
//! (`bin ≤ last accepted` drops) — the same rule
//! `netsim::RecoveredFeed` applies, so a daemon over a faulty feed
//! byte-matches an offline run over the recovered feed.
//!
//! **Checkpointing.** With `checkpoint_every > 0` and a
//! `checkpoint_dir`, the executor drains its session every N bins and
//! writes the byte-stable snapshot through [`CheckpointStore`] (framed,
//! checksummed, atomically renamed). A later process restores the
//! snapshot and resumes with [`ServiceConfig::resume_from`]; reports
//! from then on are byte-identical to the uninterrupted run.

use crate::checkpoint::CheckpointStore;
use crate::feed::{FeedSignal, RecoverableSource, SteadyFeed};
use crate::http::{HttpServer, Router};
use crate::queue::BoundedQueue;
use crate::state::{Phase, PublishedBin, QueueGauge, ServiceState, TimelinePoint};
use pinpoint_core::render;
use pinpoint_core::session::{AnalysisSession, BinSource};
use pinpoint_core::{
    Analyzer, BinReport, EventTable, FleetEvent, FleetReport, IngestStats, SanitizeStats,
    StreamRouter,
};
use pinpoint_model::json::Value;
use pinpoint_model::records::TracerouteRecord;
use pinpoint_model::{Asn, BinId};
use std::borrow::Borrow;
use std::collections::{BTreeMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Daemon knobs. `Default` binds an ephemeral localhost port with small
/// queues — the shape the tests and the example use.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Listen address (`127.0.0.1:0` = ephemeral port).
    pub addr: String,
    /// Bound of the collector → executor queue.
    pub collect_capacity: usize,
    /// Bound of the executor → reporter queue.
    pub report_capacity: usize,
    /// HTTP worker threads (concurrent clients served in parallel).
    pub http_workers: usize,
    /// Pipeline depth for the executor's session (`0` = the analyzer's
    /// configured `pipeline_depth`, `1` = serial, `2` = cross-bin
    /// overlapped).
    pub depth: usize,
    /// First sleep after a feed disconnect, in milliseconds; each
    /// further consecutive disconnect doubles it up to
    /// [`ServiceConfig::retry_cap_ms`].
    pub retry_base_ms: u64,
    /// Ceiling of the feed-retry backoff, in milliseconds.
    pub retry_cap_ms: u64,
    /// Write a durable checkpoint every N accepted bins (`0` = off;
    /// requires [`ServiceConfig::checkpoint_dir`]).
    pub checkpoint_every: u64,
    /// Directory for checkpoint files (created on first write).
    pub checkpoint_dir: Option<PathBuf>,
    /// The bin id the restored snapshot already covers: the collector
    /// rejects every feed bin `≤` this, exactly as it rejects
    /// duplicates, so a replaying feed cannot double-count bins after a
    /// `--resume`.
    pub resume_from: Option<u64>,
    /// Total wall-clock budget for reading one HTTP request head, in
    /// milliseconds — a byte-at-a-time slow-loris client is cut off
    /// with `408` when it runs out.
    pub http_read_deadline_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            collect_capacity: 4,
            report_capacity: 4,
            http_workers: 8,
            depth: 0,
            retry_base_ms: 50,
            retry_cap_ms: 2_000,
            checkpoint_every: 0,
            checkpoint_dir: None,
            resume_from: None,
            http_read_deadline_ms: 10_000,
        }
    }
}

/// One collected bin riding the collect queue, stamped for end-to-end
/// latency accounting.
struct Collected<F> {
    bin: BinId,
    feed: F,
    at: Instant,
}

/// One analyzed bin riding the report queue (not yet rendered — the
/// reporter owns rendering).
struct Emitted {
    report: ReportKind,
    ingest: IngestStats,
    sanitize: SanitizeStats,
    collected_at: Instant,
}

enum ReportKind {
    Solo(BinReport),
    Fleet(FleetReport),
}

impl ReportKind {
    fn bin(&self) -> u64 {
        match self {
            ReportKind::Solo(r) => r.bin.0,
            ReportKind::Fleet(r) => r.bin.0,
        }
    }

    /// This bin's event deltas (ascending id).
    fn events(&self) -> &[FleetEvent] {
        match self {
            ReportKind::Solo(r) => &r.events,
            ReportKind::Fleet(r) => &r.events,
        }
    }

    /// Render once (report + alarm graph + event channel) and extract
    /// the headline counters and per-AS timeline points. `events` is
    /// the reporter's running fold of every delta so far — this bin's
    /// deltas must already be absorbed.
    fn render(
        &self,
        events: &EventTable,
        ingest: IngestStats,
        sanitize: SanitizeStats,
        latency_ms: f64,
    ) -> PublishedBin {
        let (bin, report, graph, records, delay, forwarding, magnitudes) = match self {
            ReportKind::Solo(r) => (
                r.bin.0,
                render::bin_report(r),
                render::alarm_graph(&r.alarm_graph()),
                r.records,
                r.delay_alarms.len(),
                r.forwarding_alarms.len(),
                &r.magnitudes,
            ),
            ReportKind::Fleet(r) => (
                r.bin.0,
                render::fleet_report(r),
                render::alarm_graph(&r.alarm_graph()),
                r.records(),
                r.delay_alarms(),
                r.forwarding_alarms(),
                &r.magnitudes,
            ),
        };
        let deltas = self.events();
        PublishedBin {
            bin,
            report: report.to_string(),
            graph: graph_with_bin(bin, graph),
            events: events_with_bin(bin, deltas),
            events_listing: render::events(&events.ranked()).to_string(),
            // Each delta carries the event's full state and the table
            // absorbed it already, so the delta IS the current body.
            event_bodies: deltas
                .iter()
                .map(|e| (e.id, render::event(e).to_string()))
                .collect(),
            events_open: events.open_count(),
            records,
            delay_alarms: delay,
            forwarding_alarms: forwarding,
            timeline: timeline_points(bin, magnitudes),
            ingest,
            sanitize,
            latency_ms,
        }
    }
}

/// Wrap a rendered alarm graph with the bin it belongs to.
fn graph_with_bin(bin: u64, graph: Value) -> String {
    Value::object(vec![("bin", Value::Number(bin as f64)), ("graph", graph)]).to_string()
}

/// Wrap one bin's event deltas with the bin they belong to.
fn events_with_bin(bin: u64, deltas: &[FleetEvent]) -> String {
    Value::object(vec![
        ("bin", Value::Number(bin as f64)),
        (
            "events",
            Value::Array(deltas.iter().map(render::event).collect()),
        ),
    ])
    .to_string()
}

fn timeline_points(
    bin: u64,
    magnitudes: &BTreeMap<Asn, pinpoint_core::aggregate::AsMagnitude>,
) -> Vec<(u32, TimelinePoint)> {
    magnitudes
        .iter()
        .map(|(asn, m)| {
            (
                asn.0,
                TimelinePoint {
                    bin,
                    delay_severity: m.delay_severity,
                    forwarding_severity: m.forwarding_severity,
                    delay_magnitude: m.delay_magnitude,
                    forwarding_magnitude: m.forwarding_magnitude,
                },
            )
        })
        .collect()
}

/// The executor's periodic-checkpoint cadence: every `every` accepted
/// bins, drain the session and persist the byte-stable snapshot.
struct Checkpointing {
    store: CheckpointStore,
    every: u64,
    seen: u64,
    state: Arc<ServiceState>,
}

/// What the executor thread runs: it owns its analyzer (or fleet) and
/// creates the session inside the thread, because a session borrows its
/// analyzer and cannot cross the spawn boundary itself.
trait Engine: Send + 'static {
    type Feed: Send + 'static;

    /// The full current event list (open + closed) of the underlying
    /// analyzer — non-empty after a snapshot restore, where the
    /// reporter's event fold must be seeded with it or `/events` would
    /// forget everything from before the checkpoint.
    fn initial_events(&self) -> Vec<FleetEvent>;

    fn drive(
        self: Box<Self>,
        depth: usize,
        ckpt: Option<Checkpointing>,
        bins: &BoundedQueue<Collected<Self::Feed>>,
        emit: &mut dyn FnMut(Emitted) -> bool,
    );
}

/// Run one session over the collect queue until it closes, pairing each
/// in-order report with the collect timestamp of its bin. `emit`
/// returning `false` means the downstream stage is gone — stop driving
/// (dead-stage shutdown propagation). With `ckpt`, the session is
/// drained every N bins and its snapshot durably saved.
fn drive_session<S>(
    session: &mut S,
    mut ckpt: Option<Checkpointing>,
    bins: &BoundedQueue<Collected<<S::Input as ToOwned>::Owned>>,
    stats: impl Fn(&S) -> (IngestStats, SanitizeStats),
    wrap: impl Fn(S::Report) -> ReportKind,
    emit: &mut dyn FnMut(Emitted) -> bool,
) where
    S: AnalysisSession,
    S::Input: ToOwned,
    <S::Input as ToOwned>::Owned: Send + 'static,
{
    let mut inflight: VecDeque<(u64, Instant)> = VecDeque::new();
    let mut forward = |report: ReportKind, at: Instant, s: (IngestStats, SanitizeStats)| -> bool {
        emit(Emitted {
            report,
            ingest: s.0,
            sanitize: s.1,
            collected_at: at,
        })
    };
    while let Ok(c) = bins.pop() {
        let collected_bin = c.bin.0;
        inflight.push_back((collected_bin, c.at));
        if let Some(report) = session.push_bin(c.bin, c.feed.borrow()) {
            let (bin, at) = inflight.pop_front().expect("report without in-flight bin");
            let report = wrap(report);
            debug_assert_eq!(bin, report.bin(), "reports must emerge in collect order");
            if !forward(report, at, stats(session)) {
                return;
            }
        }
        if let Some(ck) = ckpt.as_mut() {
            ck.seen += 1;
            if ck.seen % ck.every == 0 {
                // Drain the pipeline so the snapshot covers every bin
                // pushed so far; the flushed report (if any) is a real
                // bin report and must still reach the reporter.
                let (report, snapshot) = session.checkpoint();
                if let Some(report) = report {
                    let (bin, at) = inflight.pop_front().expect("report without in-flight bin");
                    let report = wrap(report);
                    debug_assert_eq!(bin, report.bin(), "checkpoint must flush the pending bin");
                    if !forward(report, at, stats(session)) {
                        return;
                    }
                }
                match ck.store.save(collected_bin, &snapshot) {
                    Ok(_) => ck.state.record_checkpoint(collected_bin),
                    Err(e) => ck
                        .state
                        .record_fault(format!("checkpoint write failed: {e}")),
                }
            }
        }
    }
    if let Some(report) = session.flush() {
        let (bin, at) = inflight.pop_front().expect("report without in-flight bin");
        let report = wrap(report);
        debug_assert_eq!(bin, report.bin(), "flush must return the pending bin");
        if !forward(report, at, stats(session)) {
            return;
        }
    }
    debug_assert!(inflight.is_empty(), "drain left a collected bin unreported");
}

struct SoloEngine {
    analyzer: Analyzer,
}

impl Engine for SoloEngine {
    type Feed = Vec<TracerouteRecord>;

    fn initial_events(&self) -> Vec<FleetEvent> {
        self.analyzer.events()
    }

    fn drive(
        mut self: Box<Self>,
        depth: usize,
        ckpt: Option<Checkpointing>,
        bins: &BoundedQueue<Collected<Vec<TracerouteRecord>>>,
        emit: &mut dyn FnMut(Emitted) -> bool,
    ) {
        let mut session = self.analyzer.session(depth);
        drive_session(
            &mut session,
            ckpt,
            bins,
            |s| (s.analyzer().ingest_stats(), s.analyzer().sanitize_stats()),
            ReportKind::Solo,
            emit,
        );
    }
}

struct FleetEngine {
    router: StreamRouter,
}

impl Engine for FleetEngine {
    type Feed = Vec<Vec<TracerouteRecord>>;

    fn initial_events(&self) -> Vec<FleetEvent> {
        self.router.events()
    }

    fn drive(
        mut self: Box<Self>,
        depth: usize,
        ckpt: Option<Checkpointing>,
        bins: &BoundedQueue<Collected<Vec<Vec<TracerouteRecord>>>>,
        emit: &mut dyn FnMut(Emitted) -> bool,
    ) {
        let mut session = self.router.session(depth);
        drive_session(
            &mut session,
            ckpt,
            bins,
            |s| (s.router().ingest_stats(), s.router().sanitize_stats()),
            ReportKind::Fleet,
            emit,
        );
    }
}

/// Extract a printable message from a caught panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Run one stage body under `catch_unwind`. On panic: record the fault,
/// flip the phase to [`Phase::Failed`] (before poisoning, so no racing
/// stage can claim `Done` first), then poison both queues so blocked
/// neighbours fail fast instead of deadlocking.
fn supervise<A, B>(
    stage: &'static str,
    state: &Arc<ServiceState>,
    collect_q: &Arc<BoundedQueue<A>>,
    report_q: &Arc<BoundedQueue<B>>,
    body: impl FnOnce(),
) {
    if let Err(panic) = std::panic::catch_unwind(AssertUnwindSafe(body)) {
        state.record_fault(format!(
            "{stage} stage panicked: {}",
            panic_message(panic.as_ref())
        ));
        state.set_phase(Phase::Failed);
        collect_q.poison();
        report_q.poison();
    }
}

/// Called by the reporter thread just before publishing each bin —
/// tests install a slow hook here to prove the backpressure chain.
pub type ReportHook = Box<dyn FnMut(u64) + Send>;

/// A running pinpoint daemon (see the [module docs](self) for the
/// thread/queue topology). Dropping the daemon stops the HTTP server
/// but detaches the pipeline threads — call [`Daemon::join`] for an
/// orderly exit.
pub struct Daemon {
    state: Arc<ServiceState>,
    stop_collect: Arc<AtomicBool>,
    gauges: Arc<dyn Fn() -> (QueueGauge, QueueGauge) + Send + Sync>,
    http: HttpServer,
    threads: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Spawn the daemon over a solo analyzer. `feed` yields each bin's
    /// records in increasing bin order (any
    /// `Iterator<Item = (BinId, Vec<TracerouteRecord>)>` works).
    pub fn spawn<F>(cfg: ServiceConfig, analyzer: Analyzer, feed: F) -> std::io::Result<Daemon>
    where
        F: BinSource<Feed = Vec<TracerouteRecord>> + Send + 'static,
    {
        Self::spawn_engine(cfg, SoloEngine { analyzer }, SteadyFeed(feed), None)
    }

    /// Spawn the daemon over a solo analyzer fed by a fault-signalling
    /// source: disconnects are retried with capped exponential backoff,
    /// stalls are recorded in `/health`, and duplicate or out-of-order
    /// bins are rejected at the collector.
    pub fn spawn_recovering<F>(
        cfg: ServiceConfig,
        analyzer: Analyzer,
        feed: F,
    ) -> std::io::Result<Daemon>
    where
        F: RecoverableSource<Feed = Vec<TracerouteRecord>>,
    {
        Self::spawn_engine(cfg, SoloEngine { analyzer }, feed, None)
    }

    /// [`Daemon::spawn`] with a reporter-side hook, called with each bin
    /// id before its report is published (used by the backpressure
    /// tests to deliberately stall — or kill — the reporter).
    pub fn spawn_with_report_hook<F>(
        cfg: ServiceConfig,
        analyzer: Analyzer,
        feed: F,
        hook: ReportHook,
    ) -> std::io::Result<Daemon>
    where
        F: BinSource<Feed = Vec<TracerouteRecord>> + Send + 'static,
    {
        Self::spawn_engine(cfg, SoloEngine { analyzer }, SteadyFeed(feed), Some(hook))
    }

    /// Spawn the daemon over a stream fleet. `feed` yields one
    /// `Vec<TracerouteRecord>` per stream per bin.
    pub fn spawn_fleet<F>(
        cfg: ServiceConfig,
        router: StreamRouter,
        feed: F,
    ) -> std::io::Result<Daemon>
    where
        F: BinSource<Feed = Vec<Vec<TracerouteRecord>>> + Send + 'static,
    {
        Self::spawn_engine(cfg, FleetEngine { router }, SteadyFeed(feed), None)
    }

    fn spawn_engine<E, F>(
        cfg: ServiceConfig,
        engine: E,
        feed: F,
        hook: Option<ReportHook>,
    ) -> std::io::Result<Daemon>
    where
        E: Engine,
        F: RecoverableSource<Feed = E::Feed>,
    {
        let state = ServiceState::new();
        let collect_q = Arc::new(BoundedQueue::<Collected<E::Feed>>::new(
            cfg.collect_capacity,
        ));
        let report_q = Arc::new(BoundedQueue::<Emitted>::new(cfg.report_capacity));
        let stop_collect = Arc::new(AtomicBool::new(false));
        let initial_events = engine.initial_events();
        let ckpt = match (&cfg.checkpoint_dir, cfg.checkpoint_every) {
            (Some(dir), every) if every > 0 => Some(Checkpointing {
                store: CheckpointStore::new(dir),
                every,
                seen: 0,
                state: Arc::clone(&state),
            }),
            _ => None,
        };
        let mut threads = Vec::with_capacity(3);

        // Collector: pull signals from the feed until it runs dry or a
        // shutdown stops it, then close the queue so the executor
        // drains. A blocked push IS the backpressure edge: the feed is
        // simply not asked for bin n+2 until the executor frees a slot.
        {
            let collect_q = Arc::clone(&collect_q);
            let report_q = Arc::clone(&report_q);
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop_collect);
            let mut feed = feed;
            let resume_from = cfg.resume_from;
            let retry_base = cfg.retry_base_ms.max(1);
            let retry_cap = cfg.retry_cap_ms.max(retry_base);
            threads.push(
                std::thread::Builder::new()
                    .name("pinpointd-collector".to_string())
                    .spawn(move || {
                        supervise("collector", &state, &collect_q, &report_q, || {
                            let mut last_accepted = resume_from;
                            let mut backoff = retry_base;
                            while !stop.load(Ordering::SeqCst) {
                                match feed.next_signal() {
                                    None => break,
                                    Some(FeedSignal::Bin(bin, records)) => {
                                        // Monotonicity rule: a bin at or
                                        // below the last accepted id is a
                                        // duplicate or a late straggler —
                                        // reject it (netsim's
                                        // `RecoveredFeed` rule).
                                        if last_accepted.is_some_and(|last| bin.0 <= last) {
                                            state.record_feed_rejected();
                                            continue;
                                        }
                                        last_accepted = Some(bin.0);
                                        backoff = retry_base;
                                        state.record_collected();
                                        if collect_q
                                            .push(Collected {
                                                bin,
                                                feed: records,
                                                at: Instant::now(),
                                            })
                                            .is_err()
                                        {
                                            break;
                                        }
                                    }
                                    Some(FeedSignal::Stall(bins)) => {
                                        state.record_fault(format!(
                                            "feed stalled for {bins} bin interval(s)"
                                        ));
                                    }
                                    Some(FeedSignal::Disconnect) => {
                                        state.record_feed_retry(format!(
                                            "feed disconnected; retrying in {backoff} ms"
                                        ));
                                        std::thread::sleep(Duration::from_millis(backoff));
                                        backoff = (backoff * 2).min(retry_cap);
                                    }
                                }
                            }
                            collect_q.close();
                        });
                    })?,
            );
        }

        // Executor: one session over the whole queue; closes the report
        // queue when the collect queue is drained and flushed. A push
        // into a dead report queue stops the drive early.
        {
            let collect_q = Arc::clone(&collect_q);
            let report_q = Arc::clone(&report_q);
            let state = Arc::clone(&state);
            let depth = cfg.depth;
            threads.push(
                std::thread::Builder::new()
                    .name("pinpointd-executor".to_string())
                    .spawn(move || {
                        supervise("executor", &state, &collect_q, &report_q, || {
                            Box::new(engine).drive(depth, ckpt, &collect_q, &mut |emitted| {
                                report_q.push(emitted).is_ok()
                            });
                            report_q.close();
                        });
                    })?,
            );
        }

        // Reporter: render once, publish to the immutable cache, flip
        // the phase to Done when everything drained. After a snapshot
        // restore its event fold starts from the analyzer's restored
        // table, not empty — otherwise `/events` would forget every
        // event extracted before the checkpoint.
        {
            let collect_q = Arc::clone(&collect_q);
            let report_q = Arc::clone(&report_q);
            let state = Arc::clone(&state);
            let mut hook = hook;
            threads.push(
                std::thread::Builder::new()
                    .name("pinpointd-reporter".to_string())
                    .spawn(move || {
                        supervise("reporter", &state, &collect_q, &report_q, || {
                            // The reporter's fold of the incremental
                            // event channel: absorbing every bin's deltas
                            // in emission order reconstructs the
                            // extractor's table byte-for-byte.
                            let mut events = EventTable::new();
                            if !initial_events.is_empty() {
                                events.absorb(&initial_events);
                                state.seed_events(
                                    render::events(&events.ranked()).to_string(),
                                    initial_events
                                        .iter()
                                        .map(|e| (e.id, render::event(e).to_string()))
                                        .collect(),
                                    events.open_count(),
                                );
                            }
                            while let Ok(e) = report_q.pop() {
                                if let Some(hook) = hook.as_mut() {
                                    hook(e.report.bin());
                                }
                                events.absorb(e.report.events());
                                let latency_ms = e.collected_at.elapsed().as_secs_f64() * 1e3;
                                state.publish(
                                    e.report.render(&events, e.ingest, e.sanitize, latency_ms),
                                );
                            }
                            state.set_phase(Phase::Done);
                        });
                    })?,
            );
        }

        let gauges: Arc<dyn Fn() -> (QueueGauge, QueueGauge) + Send + Sync> = {
            let collect_q = Arc::clone(&collect_q);
            let report_q = Arc::clone(&report_q);
            Arc::new(move || (gauge(&collect_q), gauge(&report_q)))
        };

        let http = HttpServer::spawn(&cfg.addr, cfg.http_workers, {
            let state = Arc::clone(&state);
            let shutdown_state = Arc::clone(&state);
            let stop = Arc::clone(&stop_collect);
            let gauges = Arc::clone(&gauges);
            Router {
                state,
                gauges: Box::new(move || gauges()),
                on_shutdown: Box::new(move || {
                    shutdown_state.request_shutdown();
                    shutdown_state.set_phase(Phase::Draining);
                    stop.store(true, Ordering::SeqCst);
                }),
                read_deadline: Duration::from_millis(cfg.http_read_deadline_ms.max(1)),
            }
        })?;

        state.set_phase(Phase::Running);
        Ok(Daemon {
            state,
            stop_collect,
            gauges,
            http,
            threads,
        })
    }

    /// The bound address (resolve the ephemeral port here).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.http.local_addr()
    }

    /// The shared state (phase, counters, cached reports).
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Live `(collect, report)` queue gauges.
    pub fn queue_gauges(&self) -> (QueueGauge, QueueGauge) {
        (self.gauges)()
    }

    /// Request a graceful drain: the collector stops pulling new bins;
    /// every bin already collected still flows through the executor and
    /// reporter, after which the phase flips to [`Phase::Done`].
    /// Idempotent, non-blocking — follow with [`Daemon::join`] or
    /// [`ServiceState::wait_done`].
    pub fn shutdown(&self) {
        self.state.request_shutdown();
        self.state.set_phase(Phase::Draining);
        self.stop_collect.store(true, Ordering::SeqCst);
    }

    /// Graceful exit: [`Daemon::shutdown`], drain the pipeline, join
    /// every thread, stop the HTTP server. Stage panics are caught by
    /// the supervisor (the phase reads [`Phase::Failed`]), so the join
    /// itself only errors if a thread died outside its supervised body.
    pub fn join(mut self) -> std::thread::Result<()> {
        self.shutdown();
        for thread in self.threads.drain(..) {
            thread.join()?;
        }
        self.http.stop();
        Ok(())
    }
}

fn gauge<T>(q: &BoundedQueue<T>) -> QueueGauge {
    QueueGauge {
        len: q.len(),
        capacity: q.capacity(),
        peak: q.peak_depth(),
    }
}
