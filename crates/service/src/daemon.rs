//! The collector → executor → reporter pipeline.
//!
//! Three threads, two bounded queues:
//!
//! ```text
//!   feed (BinSource)                         ┌───────────────┐
//!        │ next_bin()                 ┌─────▶│ HTTP workers  │
//!        ▼                            │      │ (cached JSON) │
//!   ┌───────────┐  collect queue  ┌───┴─────┐└───────────────┘
//!   │ collector │ ───(bounded)──▶ │executor │  report queue   ┌──────────┐
//!   │  thread   │                 │ session │ ───(bounded)──▶ │ reporter │
//!   └───────────┘                 └─────────┘                 │  thread  │
//!                                                             └──────────┘
//! ```
//!
//! The collector pulls bin *n+1* from the feed while the depth-2
//! pipelined session churns bin *n*; the reporter renders each emitted
//! report **once** into the immutable cache. Both queues block their
//! producer when full (see [`crate::queue`]), so a stalled consumer
//! stalls the stage above it — backpressure all the way to the feed,
//! never unbounded growth. Graceful shutdown stops only the collector;
//! everything already collected drains through the executor and
//! reporter before the phase flips to `done`, so no collected bin goes
//! unreported.

use crate::http::{HttpServer, Router};
use crate::queue::BoundedQueue;
use crate::state::{Phase, PublishedBin, QueueGauge, ServiceState, TimelinePoint};
use pinpoint_core::render;
use pinpoint_core::session::{AnalysisSession, BinSource};
use pinpoint_core::{
    Analyzer, BinReport, EventTable, FleetEvent, FleetReport, IngestStats, SanitizeStats,
    StreamRouter,
};
use pinpoint_model::json::Value;
use pinpoint_model::records::TracerouteRecord;
use pinpoint_model::{Asn, BinId};
use std::borrow::Borrow;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Daemon knobs. `Default` binds an ephemeral localhost port with small
/// queues — the shape the tests and the example use.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Listen address (`127.0.0.1:0` = ephemeral port).
    pub addr: String,
    /// Bound of the collector → executor queue.
    pub collect_capacity: usize,
    /// Bound of the executor → reporter queue.
    pub report_capacity: usize,
    /// HTTP worker threads (concurrent clients served in parallel).
    pub http_workers: usize,
    /// Pipeline depth for the executor's session (`0` = the analyzer's
    /// configured `pipeline_depth`, `1` = serial, `2` = cross-bin
    /// overlapped).
    pub depth: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            collect_capacity: 4,
            report_capacity: 4,
            http_workers: 8,
            depth: 0,
        }
    }
}

/// One collected bin riding the collect queue, stamped for end-to-end
/// latency accounting.
struct Collected<F> {
    bin: BinId,
    feed: F,
    at: Instant,
}

/// One analyzed bin riding the report queue (not yet rendered — the
/// reporter owns rendering).
struct Emitted {
    report: ReportKind,
    ingest: IngestStats,
    sanitize: SanitizeStats,
    collected_at: Instant,
}

enum ReportKind {
    Solo(BinReport),
    Fleet(FleetReport),
}

impl ReportKind {
    fn bin(&self) -> u64 {
        match self {
            ReportKind::Solo(r) => r.bin.0,
            ReportKind::Fleet(r) => r.bin.0,
        }
    }

    /// This bin's event deltas (ascending id).
    fn events(&self) -> &[FleetEvent] {
        match self {
            ReportKind::Solo(r) => &r.events,
            ReportKind::Fleet(r) => &r.events,
        }
    }

    /// Render once (report + alarm graph + event channel) and extract
    /// the headline counters and per-AS timeline points. `events` is
    /// the reporter's running fold of every delta so far — this bin's
    /// deltas must already be absorbed.
    fn render(
        &self,
        events: &EventTable,
        ingest: IngestStats,
        sanitize: SanitizeStats,
        latency_ms: f64,
    ) -> PublishedBin {
        let (bin, report, graph, records, delay, forwarding, magnitudes) = match self {
            ReportKind::Solo(r) => (
                r.bin.0,
                render::bin_report(r),
                render::alarm_graph(&r.alarm_graph()),
                r.records,
                r.delay_alarms.len(),
                r.forwarding_alarms.len(),
                &r.magnitudes,
            ),
            ReportKind::Fleet(r) => (
                r.bin.0,
                render::fleet_report(r),
                render::alarm_graph(&r.alarm_graph()),
                r.records(),
                r.delay_alarms(),
                r.forwarding_alarms(),
                &r.magnitudes,
            ),
        };
        let deltas = self.events();
        PublishedBin {
            bin,
            report: report.to_string(),
            graph: graph_with_bin(bin, graph),
            events: events_with_bin(bin, deltas),
            events_listing: render::events(&events.ranked()).to_string(),
            // Each delta carries the event's full state and the table
            // absorbed it already, so the delta IS the current body.
            event_bodies: deltas
                .iter()
                .map(|e| (e.id, render::event(e).to_string()))
                .collect(),
            events_open: events.open_count(),
            records,
            delay_alarms: delay,
            forwarding_alarms: forwarding,
            timeline: timeline_points(bin, magnitudes),
            ingest,
            sanitize,
            latency_ms,
        }
    }
}

/// Wrap a rendered alarm graph with the bin it belongs to.
fn graph_with_bin(bin: u64, graph: Value) -> String {
    Value::object(vec![("bin", Value::Number(bin as f64)), ("graph", graph)]).to_string()
}

/// Wrap one bin's event deltas with the bin they belong to.
fn events_with_bin(bin: u64, deltas: &[FleetEvent]) -> String {
    Value::object(vec![
        ("bin", Value::Number(bin as f64)),
        (
            "events",
            Value::Array(deltas.iter().map(render::event).collect()),
        ),
    ])
    .to_string()
}

fn timeline_points(
    bin: u64,
    magnitudes: &BTreeMap<Asn, pinpoint_core::aggregate::AsMagnitude>,
) -> Vec<(u32, TimelinePoint)> {
    magnitudes
        .iter()
        .map(|(asn, m)| {
            (
                asn.0,
                TimelinePoint {
                    bin,
                    delay_severity: m.delay_severity,
                    forwarding_severity: m.forwarding_severity,
                    delay_magnitude: m.delay_magnitude,
                    forwarding_magnitude: m.forwarding_magnitude,
                },
            )
        })
        .collect()
}

/// What the executor thread runs: it owns its analyzer (or fleet) and
/// creates the session inside the thread, because a session borrows its
/// analyzer and cannot cross the spawn boundary itself.
trait Engine: Send + 'static {
    type Feed: Send + 'static;

    fn drive(
        self: Box<Self>,
        depth: usize,
        bins: &BoundedQueue<Collected<Self::Feed>>,
        emit: &mut dyn FnMut(Emitted),
    );
}

/// Run one session over the collect queue until it closes, pairing each
/// in-order report with the collect timestamp of its bin.
fn drive_session<S>(
    session: &mut S,
    bins: &BoundedQueue<Collected<<S::Input as ToOwned>::Owned>>,
    stats: impl Fn(&S) -> (IngestStats, SanitizeStats),
    wrap: impl Fn(S::Report) -> ReportKind,
    emit: &mut dyn FnMut(Emitted),
) where
    S: AnalysisSession,
    S::Input: ToOwned,
    <S::Input as ToOwned>::Owned: Send + 'static,
{
    let mut inflight: VecDeque<(u64, Instant)> = VecDeque::new();
    let mut forward = |report: ReportKind, at: Instant, s: (IngestStats, SanitizeStats)| {
        emit(Emitted {
            report,
            ingest: s.0,
            sanitize: s.1,
            collected_at: at,
        })
    };
    while let Some(c) = bins.pop() {
        inflight.push_back((c.bin.0, c.at));
        if let Some(report) = session.push_bin(c.bin, c.feed.borrow()) {
            let (bin, at) = inflight.pop_front().expect("report without in-flight bin");
            let report = wrap(report);
            debug_assert_eq!(bin, report.bin(), "reports must emerge in collect order");
            forward(report, at, stats(session));
        }
    }
    if let Some(report) = session.flush() {
        let (bin, at) = inflight.pop_front().expect("report without in-flight bin");
        let report = wrap(report);
        debug_assert_eq!(bin, report.bin(), "flush must return the pending bin");
        forward(report, at, stats(session));
    }
    debug_assert!(inflight.is_empty(), "drain left a collected bin unreported");
}

struct SoloEngine {
    analyzer: Analyzer,
}

impl Engine for SoloEngine {
    type Feed = Vec<TracerouteRecord>;

    fn drive(
        mut self: Box<Self>,
        depth: usize,
        bins: &BoundedQueue<Collected<Vec<TracerouteRecord>>>,
        emit: &mut dyn FnMut(Emitted),
    ) {
        let mut session = self.analyzer.session(depth);
        drive_session(
            &mut session,
            bins,
            |s| (s.analyzer().ingest_stats(), s.analyzer().sanitize_stats()),
            ReportKind::Solo,
            emit,
        );
    }
}

struct FleetEngine {
    router: StreamRouter,
}

impl Engine for FleetEngine {
    type Feed = Vec<Vec<TracerouteRecord>>;

    fn drive(
        mut self: Box<Self>,
        depth: usize,
        bins: &BoundedQueue<Collected<Vec<Vec<TracerouteRecord>>>>,
        emit: &mut dyn FnMut(Emitted),
    ) {
        let mut session = self.router.session(depth);
        drive_session(
            &mut session,
            bins,
            |s| (s.router().ingest_stats(), s.router().sanitize_stats()),
            ReportKind::Fleet,
            emit,
        );
    }
}

/// Called by the reporter thread just before publishing each bin —
/// tests install a slow hook here to prove the backpressure chain.
pub type ReportHook = Box<dyn FnMut(u64) + Send>;

/// A running pinpoint daemon (see the [module docs](self) for the
/// thread/queue topology). Dropping the daemon stops the HTTP server
/// but detaches the pipeline threads — call [`Daemon::join`] for an
/// orderly exit.
pub struct Daemon {
    state: Arc<ServiceState>,
    stop_collect: Arc<AtomicBool>,
    gauges: Arc<dyn Fn() -> (QueueGauge, QueueGauge) + Send + Sync>,
    http: HttpServer,
    threads: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Spawn the daemon over a solo analyzer. `feed` yields each bin's
    /// records in increasing bin order (any
    /// `Iterator<Item = (BinId, Vec<TracerouteRecord>)>` works).
    pub fn spawn<F>(cfg: ServiceConfig, analyzer: Analyzer, feed: F) -> std::io::Result<Daemon>
    where
        F: BinSource<Feed = Vec<TracerouteRecord>> + Send + 'static,
    {
        Self::spawn_engine(cfg, SoloEngine { analyzer }, feed, None)
    }

    /// [`Daemon::spawn`] with a reporter-side hook, called with each bin
    /// id before its report is published (used by the backpressure
    /// tests to deliberately stall the reporter).
    pub fn spawn_with_report_hook<F>(
        cfg: ServiceConfig,
        analyzer: Analyzer,
        feed: F,
        hook: ReportHook,
    ) -> std::io::Result<Daemon>
    where
        F: BinSource<Feed = Vec<TracerouteRecord>> + Send + 'static,
    {
        Self::spawn_engine(cfg, SoloEngine { analyzer }, feed, Some(hook))
    }

    /// Spawn the daemon over a stream fleet. `feed` yields one
    /// `Vec<TracerouteRecord>` per stream per bin.
    pub fn spawn_fleet<F>(
        cfg: ServiceConfig,
        router: StreamRouter,
        feed: F,
    ) -> std::io::Result<Daemon>
    where
        F: BinSource<Feed = Vec<Vec<TracerouteRecord>>> + Send + 'static,
    {
        Self::spawn_engine(cfg, FleetEngine { router }, feed, None)
    }

    fn spawn_engine<E, F>(
        cfg: ServiceConfig,
        engine: E,
        feed: F,
        hook: Option<ReportHook>,
    ) -> std::io::Result<Daemon>
    where
        E: Engine,
        F: BinSource<Feed = E::Feed> + Send + 'static,
    {
        let state = ServiceState::new();
        let collect_q = Arc::new(BoundedQueue::<Collected<E::Feed>>::new(
            cfg.collect_capacity,
        ));
        let report_q = Arc::new(BoundedQueue::<Emitted>::new(cfg.report_capacity));
        let stop_collect = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::with_capacity(3);

        // Collector: pull bins from the feed until it runs dry or a
        // shutdown stops it, then close the queue so the executor
        // drains. A blocked push IS the backpressure edge: the feed is
        // simply not asked for bin n+2 until the executor frees a slot.
        {
            let collect_q = Arc::clone(&collect_q);
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop_collect);
            let mut feed = feed;
            threads.push(
                std::thread::Builder::new()
                    .name("pinpointd-collector".to_string())
                    .spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            let Some((bin, records)) = feed.next_bin() else {
                                break;
                            };
                            state.record_collected();
                            if collect_q
                                .push(Collected {
                                    bin,
                                    feed: records,
                                    at: Instant::now(),
                                })
                                .is_err()
                            {
                                break;
                            }
                        }
                        collect_q.close();
                    })?,
            );
        }

        // Executor: one session over the whole queue; closes the report
        // queue when the collect queue is drained and flushed.
        {
            let collect_q = Arc::clone(&collect_q);
            let report_q = Arc::clone(&report_q);
            let depth = cfg.depth;
            threads.push(
                std::thread::Builder::new()
                    .name("pinpointd-executor".to_string())
                    .spawn(move || {
                        Box::new(engine).drive(depth, &collect_q, &mut |emitted| {
                            let _ = report_q.push(emitted);
                        });
                        report_q.close();
                    })?,
            );
        }

        // Reporter: render once, publish to the immutable cache, flip
        // the phase to Done when everything drained.
        {
            let report_q = Arc::clone(&report_q);
            let state = Arc::clone(&state);
            let mut hook = hook;
            threads.push(
                std::thread::Builder::new()
                    .name("pinpointd-reporter".to_string())
                    .spawn(move || {
                        // The reporter's fold of the incremental event
                        // channel: absorbing every bin's deltas in
                        // emission order reconstructs the extractor's
                        // table byte-for-byte.
                        let mut events = EventTable::new();
                        while let Some(e) = report_q.pop() {
                            if let Some(hook) = hook.as_mut() {
                                hook(e.report.bin());
                            }
                            events.absorb(e.report.events());
                            let latency_ms = e.collected_at.elapsed().as_secs_f64() * 1e3;
                            state.publish(
                                e.report.render(&events, e.ingest, e.sanitize, latency_ms),
                            );
                        }
                        state.set_phase(Phase::Done);
                    })?,
            );
        }

        let gauges: Arc<dyn Fn() -> (QueueGauge, QueueGauge) + Send + Sync> = {
            let collect_q = Arc::clone(&collect_q);
            let report_q = Arc::clone(&report_q);
            Arc::new(move || (gauge(&collect_q), gauge(&report_q)))
        };

        let http = HttpServer::spawn(&cfg.addr, cfg.http_workers, {
            let state = Arc::clone(&state);
            let shutdown_state = Arc::clone(&state);
            let stop = Arc::clone(&stop_collect);
            let gauges = Arc::clone(&gauges);
            Router {
                state,
                gauges: Box::new(move || gauges()),
                on_shutdown: Box::new(move || {
                    shutdown_state.request_shutdown();
                    shutdown_state.set_phase(Phase::Draining);
                    stop.store(true, Ordering::SeqCst);
                }),
            }
        })?;

        state.set_phase(Phase::Running);
        Ok(Daemon {
            state,
            stop_collect,
            gauges,
            http,
            threads,
        })
    }

    /// The bound address (resolve the ephemeral port here).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.http.local_addr()
    }

    /// The shared state (phase, counters, cached reports).
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Live `(collect, report)` queue gauges.
    pub fn queue_gauges(&self) -> (QueueGauge, QueueGauge) {
        (self.gauges)()
    }

    /// Request a graceful drain: the collector stops pulling new bins;
    /// every bin already collected still flows through the executor and
    /// reporter, after which the phase flips to [`Phase::Done`].
    /// Idempotent, non-blocking — follow with [`Daemon::join`] or
    /// [`ServiceState::wait_done`].
    pub fn shutdown(&self) {
        self.state.request_shutdown();
        self.state.set_phase(Phase::Draining);
        self.stop_collect.store(true, Ordering::SeqCst);
    }

    /// Graceful exit: [`Daemon::shutdown`], drain the pipeline, join
    /// every thread, stop the HTTP server.
    pub fn join(mut self) -> std::thread::Result<()> {
        self.shutdown();
        for thread in self.threads.drain(..) {
            thread.join()?;
        }
        self.http.stop();
        Ok(())
    }
}

fn gauge<T>(q: &BoundedQueue<T>) -> QueueGauge {
    QueueGauge {
        len: q.len(),
        capacity: q.capacity(),
        peak: q.peak_depth(),
    }
}
