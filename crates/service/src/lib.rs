//! # pinpoint-service
//!
//! The live deployment shape of the pipeline (§8's "Internet Health
//! Report" service): a long-running daemon that collects traceroute
//! bins from a feed, analyzes them on the cross-bin pipelined executor
//! through the unified `pinpoint_core::session` API, renders each
//! report once into an immutable cache, and serves the results over a
//! std-only HTTP surface.
//!
//! Three stages, two bounded queues (see [`daemon`] for the topology):
//! the collector pulls bin *n+1* while the executor churns bin *n*;
//! the reporter renders and publishes. Every queue blocks its producer
//! when full ([`queue::BoundedQueue`]), so a slow consumer stalls the
//! stage above instead of growing a backlog — the service is
//! memory-bounded by construction. Graceful shutdown ([`Daemon::
//! shutdown`] or `POST /shutdown`) stops only the collector and drains
//! everything already collected: no collected bin goes unreported.
//!
//! **Determinism contract, extended to the service:** replaying the
//! same record sequence through the daemon produces reports
//! byte-identical to the offline `scenarios::run_pipelined` rendered
//! through `pinpoint_core::render` — proven by `tests/service_parity.rs`
//! across the thread/chunk/depth CI matrix.
//!
//! **Crash safety:** every stage runs supervised (`catch_unwind`); a
//! panic poisons both queues, flips the phase to [`Phase::Failed`], and
//! leaves the HTTP surface serving cached reports plus a degraded
//! `/health`. The executor can periodically persist byte-stable
//! snapshots through [`checkpoint::CheckpointStore`]; a restarted
//! process restores the newest valid checkpoint and resumes with
//! reports byte-identical to the uninterrupted run. Live feeds plug in
//! through [`feed::RecoverableSource`], whose disconnect/stall signals
//! the collector answers with capped-exponential-backoff retries and
//! whose duplicated or reordered bins it rejects by monotonicity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod daemon;
pub mod feed;
pub mod http;
pub mod queue;
pub mod state;

pub use checkpoint::CheckpointStore;
pub use daemon::{Daemon, ReportHook, ServiceConfig};
pub use feed::{FeedSignal, RecoverableSource, SignalFeed, SteadyFeed};
pub use queue::{BoundedQueue, Closed};
pub use state::{Phase, QueueGauge, ServiceState};
