//! # pinpoint-service
//!
//! The live deployment shape of the pipeline (§8's "Internet Health
//! Report" service): a long-running daemon that collects traceroute
//! bins from a feed, analyzes them on the cross-bin pipelined executor
//! through the unified `pinpoint_core::session` API, renders each
//! report once into an immutable cache, and serves the results over a
//! std-only HTTP surface.
//!
//! Three stages, two bounded queues (see [`daemon`] for the topology):
//! the collector pulls bin *n+1* while the executor churns bin *n*;
//! the reporter renders and publishes. Every queue blocks its producer
//! when full ([`queue::BoundedQueue`]), so a slow consumer stalls the
//! stage above instead of growing a backlog — the service is
//! memory-bounded by construction. Graceful shutdown ([`Daemon::
//! shutdown`] or `POST /shutdown`) stops only the collector and drains
//! everything already collected: no collected bin goes unreported.
//!
//! **Determinism contract, extended to the service:** replaying the
//! same record sequence through the daemon produces reports
//! byte-identical to the offline `scenarios::run_pipelined` rendered
//! through `pinpoint_core::render` — proven by `tests/service_parity.rs`
//! across the thread/chunk/depth CI matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod http;
pub mod queue;
pub mod state;

pub use daemon::{Daemon, ReportHook, ServiceConfig};
pub use queue::BoundedQueue;
pub use state::{Phase, QueueGauge, ServiceState};
