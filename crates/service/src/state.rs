//! The daemon's shared, HTTP-visible state.
//!
//! The reporter thread is the **only writer of report content**: it
//! renders each emitted report once (through `pinpoint_core::render`)
//! and publishes the strings here behind `Arc`s — the immutable-report
//! cache. HTTP workers clone the `Arc` and serve the exact bytes, so a
//! report is never re-rendered, never mutated, and every concurrent
//! client sees the identical byte sequence (the determinism contract's
//! service extension).

use pinpoint_core::render;
use pinpoint_core::{IngestStats, SanitizeStats};
use pinpoint_model::json::Value;
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};

/// Where the pipeline is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Threads are starting; nothing collected yet.
    Starting,
    /// Collector, executor, and reporter are live.
    Running,
    /// Shutdown requested; the pipeline is draining queued bins.
    Draining,
    /// Every collected bin has been reported.
    Done,
}

impl Phase {
    fn as_str(self) -> &'static str {
        match self {
            Phase::Starting => "starting",
            Phase::Running => "running",
            Phase::Draining => "draining",
            Phase::Done => "done",
        }
    }
}

/// One published bin: the cached render plus its headline counters.
struct BinEntry {
    /// The full `render::bin_report` / `render::fleet_report` string.
    report: Arc<String>,
    /// The `render::alarm_graph` string.
    graph: Arc<String>,
    /// The bin's event deltas (`/bins/{id}/events` body).
    events: Arc<String>,
    records: usize,
    delay_alarms: usize,
    forwarding_alarms: usize,
    /// Collect→report latency of this bin.
    latency_ms: f64,
}

/// One `(bin, magnitude)` sample of an AS's timeline.
pub(crate) struct TimelinePoint {
    pub bin: u64,
    pub delay_severity: f64,
    pub forwarding_severity: f64,
    pub delay_magnitude: f64,
    pub forwarding_magnitude: f64,
}

#[derive(Default)]
struct Counters {
    collected: u64,
    reported: u64,
    latency_last_ms: f64,
    latency_peak_ms: f64,
    latency_sum_ms: f64,
}

struct Inner {
    phase: Phase,
    shutdown_requested: bool,
    entries: BTreeMap<u64, BinEntry>,
    timelines: BTreeMap<u32, Vec<TimelinePoint>>,
    /// The ranked `/events` listing as of the latest reported bin.
    events_listing: Arc<String>,
    /// Current state of every event ever reported (`/events/{id}`).
    event_bodies: BTreeMap<u64, Arc<String>>,
    /// Events still open as of the latest reported bin.
    events_open: usize,
    ingest: IngestStats,
    sanitize: SanitizeStats,
    counters: Counters,
}

/// Live queue-depth reading of one pipeline edge (for `/stats`).
#[derive(Debug, Clone, Copy)]
pub struct QueueGauge {
    /// Items queued right now.
    pub len: usize,
    /// The bound.
    pub capacity: usize,
    /// High-water mark.
    pub peak: usize,
}

impl QueueGauge {
    fn json(&self) -> Value {
        Value::object(vec![
            ("len", Value::Number(self.len as f64)),
            ("capacity", Value::Number(self.capacity as f64)),
            ("peak", Value::Number(self.peak as f64)),
        ])
    }
}

/// What the reporter publishes for one bin (already rendered).
pub(crate) struct PublishedBin {
    pub bin: u64,
    pub report: String,
    pub graph: String,
    /// The bin's event deltas, wrapped with the bin id.
    pub events: String,
    /// The full ranked listing as of this bin.
    pub events_listing: String,
    /// `(id, body)` for every event this bin touched.
    pub event_bodies: Vec<(u64, String)>,
    /// Open events as of this bin.
    pub events_open: usize,
    pub records: usize,
    pub delay_alarms: usize,
    pub forwarding_alarms: usize,
    pub timeline: Vec<(u32, TimelinePoint)>,
    pub ingest: IngestStats,
    pub sanitize: SanitizeStats,
    pub latency_ms: f64,
}

/// The daemon's shared state: phase, counters, and the immutable-report
/// cache (see the [module docs](self)).
pub struct ServiceState {
    inner: Mutex<Inner>,
    changed: Condvar,
}

impl Default for ServiceState {
    fn default() -> Self {
        ServiceState {
            inner: Mutex::new(Inner {
                phase: Phase::Starting,
                shutdown_requested: false,
                entries: BTreeMap::new(),
                timelines: BTreeMap::new(),
                events_listing: Arc::new(render::events(&[]).to_string()),
                event_bodies: BTreeMap::new(),
                events_open: 0,
                ingest: IngestStats::default(),
                sanitize: SanitizeStats::default(),
                counters: Counters::default(),
            }),
            changed: Condvar::new(),
        }
    }
}

impl ServiceState {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    pub(crate) fn set_phase(&self, phase: Phase) {
        let mut inner = self.inner.lock().unwrap();
        // Never regress out of Done: a shutdown() arriving after the
        // feed already drained must not flip the phase back to Draining.
        if inner.phase != Phase::Done || phase == Phase::Done {
            inner.phase = phase;
        }
        self.changed.notify_all();
    }

    /// The current lifecycle phase.
    pub fn phase(&self) -> Phase {
        self.inner.lock().unwrap().phase
    }

    /// Block until the pipeline reaches [`Phase::Done`].
    pub fn wait_done(&self) {
        let mut inner = self.inner.lock().unwrap();
        while inner.phase != Phase::Done {
            inner = self.changed.wait(inner).unwrap();
        }
    }

    pub(crate) fn request_shutdown(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.shutdown_requested = true;
        self.changed.notify_all();
    }

    /// Whether a shutdown was requested (via [`crate::Daemon::shutdown`]
    /// or `POST /shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        self.inner.lock().unwrap().shutdown_requested
    }

    /// Block until a shutdown is requested.
    pub fn wait_shutdown_requested(&self) {
        let mut inner = self.inner.lock().unwrap();
        while !inner.shutdown_requested {
            inner = self.changed.wait(inner).unwrap();
        }
    }

    pub(crate) fn record_collected(&self) {
        self.inner.lock().unwrap().counters.collected += 1;
    }

    /// Bins the collector has pulled from the feed so far.
    pub fn bins_collected(&self) -> u64 {
        self.inner.lock().unwrap().counters.collected
    }

    /// Bins with a published report.
    pub fn bins_reported(&self) -> u64 {
        self.inner.lock().unwrap().counters.reported
    }

    pub(crate) fn publish(&self, p: PublishedBin) {
        let mut inner = self.inner.lock().unwrap();
        inner.entries.insert(
            p.bin,
            BinEntry {
                report: Arc::new(p.report),
                graph: Arc::new(p.graph),
                events: Arc::new(p.events),
                records: p.records,
                delay_alarms: p.delay_alarms,
                forwarding_alarms: p.forwarding_alarms,
                latency_ms: p.latency_ms,
            },
        );
        inner.events_listing = Arc::new(p.events_listing);
        for (id, body) in p.event_bodies {
            inner.event_bodies.insert(id, Arc::new(body));
        }
        inner.events_open = p.events_open;
        for (asn, point) in p.timeline {
            inner.timelines.entry(asn).or_default().push(point);
        }
        inner.ingest = p.ingest;
        inner.sanitize = p.sanitize;
        inner.counters.reported += 1;
        inner.counters.latency_last_ms = p.latency_ms;
        inner.counters.latency_peak_ms = inner.counters.latency_peak_ms.max(p.latency_ms);
        inner.counters.latency_sum_ms += p.latency_ms;
        self.changed.notify_all();
    }

    /// The cached report of one bin — the exact bytes every client gets.
    pub fn report(&self, bin: u64) -> Option<Arc<String>> {
        self.inner
            .lock()
            .unwrap()
            .entries
            .get(&bin)
            .map(|e| Arc::clone(&e.report))
    }

    /// The cached alarm graph of one bin (`None` = latest reported).
    pub fn graph(&self, bin: Option<u64>) -> Option<Arc<String>> {
        let inner = self.inner.lock().unwrap();
        match bin {
            Some(b) => inner.entries.get(&b).map(|e| Arc::clone(&e.graph)),
            None => inner
                .entries
                .values()
                .next_back()
                .map(|e| Arc::clone(&e.graph)),
        }
    }

    /// Ids of every reported bin, ascending.
    pub fn bin_ids(&self) -> Vec<u64> {
        self.inner.lock().unwrap().entries.keys().copied().collect()
    }

    /// The cached `/events` listing — ranked fleet events as of the
    /// latest reported bin (an empty listing before the first bin).
    pub fn events_json(&self) -> Arc<String> {
        Arc::clone(&self.inner.lock().unwrap().events_listing)
    }

    /// The cached current state of one event (`/events/{id}`).
    pub fn event_json(&self, id: u64) -> Option<Arc<String>> {
        self.inner
            .lock()
            .unwrap()
            .event_bodies
            .get(&id)
            .map(Arc::clone)
    }

    /// The cached event deltas of one bin (`/bins/{id}/events`).
    pub fn bin_events(&self, bin: u64) -> Option<Arc<String>> {
        self.inner
            .lock()
            .unwrap()
            .entries
            .get(&bin)
            .map(|e| Arc::clone(&e.events))
    }

    /// Events still open as of the latest reported bin.
    pub fn events_open(&self) -> usize {
        self.inner.lock().unwrap().events_open
    }

    /// `/health` body.
    pub fn health_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let latest = inner.entries.keys().next_back().copied();
        Value::object(vec![
            ("service", Value::String("pinpointd".to_string())),
            ("phase", Value::String(inner.phase.as_str().to_string())),
            ("ready", Value::Bool(!inner.entries.is_empty())),
            (
                "bins_collected",
                Value::Number(inner.counters.collected as f64),
            ),
            (
                "bins_reported",
                Value::Number(inner.counters.reported as f64),
            ),
            (
                "latest_bin",
                latest.map_or(Value::Null, |b| Value::Number(b as f64)),
            ),
            ("events_open", Value::Number(inner.events_open as f64)),
        ])
        .to_string()
    }

    /// `/bins` body: every reported bin with its headline counters.
    pub fn bins_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let rows = inner
            .entries
            .iter()
            .map(|(bin, e)| {
                Value::object(vec![
                    ("bin", Value::Number(*bin as f64)),
                    ("records", Value::Number(e.records as f64)),
                    ("delay_alarms", Value::Number(e.delay_alarms as f64)),
                    (
                        "forwarding_alarms",
                        Value::Number(e.forwarding_alarms as f64),
                    ),
                    ("latency_ms", Value::Number(e.latency_ms)),
                ])
            })
            .collect();
        Value::object(vec![
            ("bins", Value::Array(rows)),
            (
                "latest",
                inner
                    .entries
                    .keys()
                    .next_back()
                    .map_or(Value::Null, |b| Value::Number(*b as f64)),
            ),
        ])
        .to_string()
    }

    /// `/asn/{id}/timeline` body, `None` when the AS was never scored.
    pub fn timeline_json(&self, asn: u32) -> Option<String> {
        let inner = self.inner.lock().unwrap();
        let points = inner.timelines.get(&asn)?;
        let rows = points
            .iter()
            .map(|p| {
                Value::object(vec![
                    ("bin", Value::Number(p.bin as f64)),
                    ("delay_severity", Value::Number(p.delay_severity)),
                    ("forwarding_severity", Value::Number(p.forwarding_severity)),
                    ("delay_magnitude", Value::Number(p.delay_magnitude)),
                    (
                        "forwarding_magnitude",
                        Value::Number(p.forwarding_magnitude),
                    ),
                ])
            })
            .collect();
        Some(
            Value::object(vec![
                ("asn", Value::Number(f64::from(asn))),
                ("points", Value::Array(rows)),
            ])
            .to_string(),
        )
    }

    /// `(last, mean, peak)` collect→report latency over every reported
    /// bin, in wall milliseconds — the number the `service_e2e` bench
    /// workload tracks PR over PR.
    pub fn latency_ms(&self) -> (f64, f64, f64) {
        let inner = self.inner.lock().unwrap();
        (
            inner.counters.latency_last_ms,
            mean_latency(&inner.counters),
            inner.counters.latency_peak_ms,
        )
    }

    /// `/stats` body; queue gauges are read live by the caller.
    pub fn stats_json(&self, collect: QueueGauge, report: QueueGauge) -> String {
        let inner = self.inner.lock().unwrap();
        let mean = mean_latency(&inner.counters);
        Value::object(vec![
            ("phase", Value::String(inner.phase.as_str().to_string())),
            (
                "bins_collected",
                Value::Number(inner.counters.collected as f64),
            ),
            (
                "bins_reported",
                Value::Number(inner.counters.reported as f64),
            ),
            ("ingest", render::ingest_stats(&inner.ingest)),
            ("sanitize", render::sanitize_stats(&inner.sanitize)),
            (
                "queues",
                Value::object(vec![("collect", collect.json()), ("report", report.json())]),
            ),
            (
                "latency_ms",
                Value::object(vec![
                    ("last", Value::Number(inner.counters.latency_last_ms)),
                    ("mean", Value::Number(mean)),
                    ("peak", Value::Number(inner.counters.latency_peak_ms)),
                ]),
            ),
        ])
        .to_string()
    }
}

fn mean_latency(counters: &Counters) -> f64 {
    if counters.reported > 0 {
        counters.latency_sum_ms / counters.reported as f64
    } else {
        0.0
    }
}
