//! The daemon's shared, HTTP-visible state.
//!
//! The reporter thread is the **only writer of report content**: it
//! renders each emitted report once (through `pinpoint_core::render`)
//! and publishes the strings here behind `Arc`s — the immutable-report
//! cache. HTTP workers clone the `Arc` and serve the exact bytes, so a
//! report is never re-rendered, never mutated, and every concurrent
//! client sees the identical byte sequence (the determinism contract's
//! service extension).

use pinpoint_core::render;
use pinpoint_core::{IngestStats, SanitizeStats};
use pinpoint_model::json::Value;
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};

/// Where the pipeline is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Threads are starting; nothing collected yet.
    Starting,
    /// Collector, executor, and reporter are live.
    Running,
    /// Shutdown requested; the pipeline is draining queued bins.
    Draining,
    /// Every collected bin has been reported.
    Done,
    /// A supervised stage died (panicked). Terminal and sticky: once
    /// failed, the phase never changes again — the cached reports stay
    /// servable, `/health` carries the fault, and the process should be
    /// restarted (with `--resume` to pick up the latest checkpoint).
    Failed,
}

impl Phase {
    fn as_str(self) -> &'static str {
        match self {
            Phase::Starting => "starting",
            Phase::Running => "running",
            Phase::Draining => "draining",
            Phase::Done => "done",
            Phase::Failed => "failed",
        }
    }
}

/// One published bin: the cached render plus its headline counters.
struct BinEntry {
    /// The full `render::bin_report` / `render::fleet_report` string.
    report: Arc<String>,
    /// The `render::alarm_graph` string.
    graph: Arc<String>,
    /// The bin's event deltas (`/bins/{id}/events` body).
    events: Arc<String>,
    records: usize,
    delay_alarms: usize,
    forwarding_alarms: usize,
    /// Collect→report latency of this bin.
    latency_ms: f64,
}

/// One `(bin, magnitude)` sample of an AS's timeline.
pub(crate) struct TimelinePoint {
    pub bin: u64,
    pub delay_severity: f64,
    pub forwarding_severity: f64,
    pub delay_magnitude: f64,
    pub forwarding_magnitude: f64,
}

#[derive(Default)]
struct Counters {
    collected: u64,
    reported: u64,
    latency_last_ms: f64,
    latency_peak_ms: f64,
    latency_sum_ms: f64,
}

/// Degraded-mode bookkeeping surfaced in `/health`: the last fault the
/// supervisor or collector saw, how often the feed was retried, and how
/// far the latest checkpoint trails the latest report.
#[derive(Default)]
struct Degraded {
    /// Human-readable description of the most recent fault.
    last_fault: Option<String>,
    /// Feed reconnect attempts (capped-exponential-backoff retries).
    feed_retries: u64,
    /// Duplicate / out-of-order bins the collector rejected.
    feed_rejected: u64,
    /// The bin id of the latest durable checkpoint, if any was written.
    last_checkpoint_bin: Option<u64>,
}

struct Inner {
    phase: Phase,
    shutdown_requested: bool,
    entries: BTreeMap<u64, BinEntry>,
    timelines: BTreeMap<u32, Vec<TimelinePoint>>,
    /// The ranked `/events` listing as of the latest reported bin.
    events_listing: Arc<String>,
    /// Current state of every event ever reported (`/events/{id}`).
    event_bodies: BTreeMap<u64, Arc<String>>,
    /// Events still open as of the latest reported bin.
    events_open: usize,
    ingest: IngestStats,
    sanitize: SanitizeStats,
    counters: Counters,
    degraded: Degraded,
}

/// Live queue-depth reading of one pipeline edge (for `/stats`).
#[derive(Debug, Clone, Copy)]
pub struct QueueGauge {
    /// Items queued right now.
    pub len: usize,
    /// The bound.
    pub capacity: usize,
    /// High-water mark.
    pub peak: usize,
}

impl QueueGauge {
    fn json(&self) -> Value {
        Value::object(vec![
            ("len", Value::Number(self.len as f64)),
            ("capacity", Value::Number(self.capacity as f64)),
            ("peak", Value::Number(self.peak as f64)),
        ])
    }
}

/// What the reporter publishes for one bin (already rendered).
pub(crate) struct PublishedBin {
    pub bin: u64,
    pub report: String,
    pub graph: String,
    /// The bin's event deltas, wrapped with the bin id.
    pub events: String,
    /// The full ranked listing as of this bin.
    pub events_listing: String,
    /// `(id, body)` for every event this bin touched.
    pub event_bodies: Vec<(u64, String)>,
    /// Open events as of this bin.
    pub events_open: usize,
    pub records: usize,
    pub delay_alarms: usize,
    pub forwarding_alarms: usize,
    pub timeline: Vec<(u32, TimelinePoint)>,
    pub ingest: IngestStats,
    pub sanitize: SanitizeStats,
    pub latency_ms: f64,
}

/// The daemon's shared state: phase, counters, and the immutable-report
/// cache (see the [module docs](self)).
pub struct ServiceState {
    inner: Mutex<Inner>,
    changed: Condvar,
}

impl Default for ServiceState {
    fn default() -> Self {
        ServiceState {
            inner: Mutex::new(Inner {
                phase: Phase::Starting,
                shutdown_requested: false,
                entries: BTreeMap::new(),
                timelines: BTreeMap::new(),
                events_listing: Arc::new(render::events(&[]).to_string()),
                event_bodies: BTreeMap::new(),
                events_open: 0,
                ingest: IngestStats::default(),
                sanitize: SanitizeStats::default(),
                counters: Counters::default(),
                degraded: Degraded::default(),
            }),
            changed: Condvar::new(),
        }
    }
}

impl ServiceState {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    pub(crate) fn set_phase(&self, phase: Phase) {
        let mut inner = self.inner.lock().unwrap();
        // Failed is terminal, and Done never regresses (a shutdown()
        // arriving after the feed already drained must not flip the
        // phase back to Draining) — but a stage dying *while* the
        // drain completes still wins: Done → Failed is allowed.
        let allowed = match inner.phase {
            Phase::Failed => false,
            Phase::Done => matches!(phase, Phase::Done | Phase::Failed),
            _ => true,
        };
        if allowed {
            inner.phase = phase;
        }
        self.changed.notify_all();
    }

    /// The current lifecycle phase.
    pub fn phase(&self) -> Phase {
        self.inner.lock().unwrap().phase
    }

    /// Block until the pipeline reaches a terminal phase —
    /// [`Phase::Done`] on a clean drain, [`Phase::Failed`] if a
    /// supervised stage died (check [`ServiceState::phase`] after).
    pub fn wait_done(&self) {
        let mut inner = self.inner.lock().unwrap();
        while !matches!(inner.phase, Phase::Done | Phase::Failed) {
            inner = self.changed.wait(inner).unwrap();
        }
    }

    pub(crate) fn request_shutdown(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.shutdown_requested = true;
        self.changed.notify_all();
    }

    /// Whether a shutdown was requested (via [`crate::Daemon::shutdown`]
    /// or `POST /shutdown`).
    pub fn shutdown_requested(&self) -> bool {
        self.inner.lock().unwrap().shutdown_requested
    }

    /// Block until a shutdown is requested.
    pub fn wait_shutdown_requested(&self) {
        let mut inner = self.inner.lock().unwrap();
        while !inner.shutdown_requested {
            inner = self.changed.wait(inner).unwrap();
        }
    }

    pub(crate) fn record_collected(&self) {
        self.inner.lock().unwrap().counters.collected += 1;
    }

    /// Note a fault (stage panic, feed hiccup, checkpoint-write error)
    /// for degraded-mode reporting. The message shows up verbatim as
    /// `last_fault` in `/health`.
    pub(crate) fn record_fault(&self, message: String) {
        let mut inner = self.inner.lock().unwrap();
        inner.degraded.last_fault = Some(message);
        self.changed.notify_all();
    }

    /// Note one feed reconnect attempt (with its fault description).
    pub(crate) fn record_feed_retry(&self, message: String) {
        let mut inner = self.inner.lock().unwrap();
        inner.degraded.feed_retries += 1;
        inner.degraded.last_fault = Some(message);
        self.changed.notify_all();
    }

    /// Note one duplicate / out-of-order bin the collector rejected.
    pub(crate) fn record_feed_rejected(&self) {
        self.inner.lock().unwrap().degraded.feed_rejected += 1;
    }

    /// Note a durable checkpoint through `bin`.
    pub(crate) fn record_checkpoint(&self, bin: u64) {
        self.inner.lock().unwrap().degraded.last_checkpoint_bin = Some(bin);
    }

    /// The most recent fault, if any (also in `/health` as `last_fault`).
    pub fn last_fault(&self) -> Option<String> {
        self.inner.lock().unwrap().degraded.last_fault.clone()
    }

    /// Feed reconnect attempts so far.
    pub fn feed_retries(&self) -> u64 {
        self.inner.lock().unwrap().degraded.feed_retries
    }

    /// Duplicate / out-of-order bins the collector rejected so far.
    pub fn feed_rejected(&self) -> u64 {
        self.inner.lock().unwrap().degraded.feed_rejected
    }

    /// The bin id of the latest durable checkpoint, if one was written.
    pub fn last_checkpoint(&self) -> Option<u64> {
        self.inner.lock().unwrap().degraded.last_checkpoint_bin
    }

    /// Seed the event cache from a restored analyzer's table so
    /// `/events` and `/events/{id}` are correct immediately after a
    /// `--resume`, before the first post-restart bin reports.
    pub(crate) fn seed_events(&self, listing: String, bodies: Vec<(u64, String)>, open: usize) {
        let mut inner = self.inner.lock().unwrap();
        inner.events_listing = Arc::new(listing);
        for (id, body) in bodies {
            inner.event_bodies.insert(id, Arc::new(body));
        }
        inner.events_open = open;
    }

    /// Bins the collector has pulled from the feed so far.
    pub fn bins_collected(&self) -> u64 {
        self.inner.lock().unwrap().counters.collected
    }

    /// Bins with a published report.
    pub fn bins_reported(&self) -> u64 {
        self.inner.lock().unwrap().counters.reported
    }

    pub(crate) fn publish(&self, p: PublishedBin) {
        let mut inner = self.inner.lock().unwrap();
        inner.entries.insert(
            p.bin,
            BinEntry {
                report: Arc::new(p.report),
                graph: Arc::new(p.graph),
                events: Arc::new(p.events),
                records: p.records,
                delay_alarms: p.delay_alarms,
                forwarding_alarms: p.forwarding_alarms,
                latency_ms: p.latency_ms,
            },
        );
        inner.events_listing = Arc::new(p.events_listing);
        for (id, body) in p.event_bodies {
            inner.event_bodies.insert(id, Arc::new(body));
        }
        inner.events_open = p.events_open;
        for (asn, point) in p.timeline {
            inner.timelines.entry(asn).or_default().push(point);
        }
        inner.ingest = p.ingest;
        inner.sanitize = p.sanitize;
        inner.counters.reported += 1;
        inner.counters.latency_last_ms = p.latency_ms;
        inner.counters.latency_peak_ms = inner.counters.latency_peak_ms.max(p.latency_ms);
        inner.counters.latency_sum_ms += p.latency_ms;
        self.changed.notify_all();
    }

    /// The cached report of one bin — the exact bytes every client gets.
    pub fn report(&self, bin: u64) -> Option<Arc<String>> {
        self.inner
            .lock()
            .unwrap()
            .entries
            .get(&bin)
            .map(|e| Arc::clone(&e.report))
    }

    /// The cached alarm graph of one bin (`None` = latest reported).
    pub fn graph(&self, bin: Option<u64>) -> Option<Arc<String>> {
        let inner = self.inner.lock().unwrap();
        match bin {
            Some(b) => inner.entries.get(&b).map(|e| Arc::clone(&e.graph)),
            None => inner
                .entries
                .values()
                .next_back()
                .map(|e| Arc::clone(&e.graph)),
        }
    }

    /// Ids of every reported bin, ascending.
    pub fn bin_ids(&self) -> Vec<u64> {
        self.inner.lock().unwrap().entries.keys().copied().collect()
    }

    /// The cached `/events` listing — ranked fleet events as of the
    /// latest reported bin (an empty listing before the first bin).
    pub fn events_json(&self) -> Arc<String> {
        Arc::clone(&self.inner.lock().unwrap().events_listing)
    }

    /// The cached current state of one event (`/events/{id}`).
    pub fn event_json(&self, id: u64) -> Option<Arc<String>> {
        self.inner
            .lock()
            .unwrap()
            .event_bodies
            .get(&id)
            .map(Arc::clone)
    }

    /// The cached event deltas of one bin (`/bins/{id}/events`).
    pub fn bin_events(&self, bin: u64) -> Option<Arc<String>> {
        self.inner
            .lock()
            .unwrap()
            .entries
            .get(&bin)
            .map(|e| Arc::clone(&e.events))
    }

    /// Events still open as of the latest reported bin.
    pub fn events_open(&self) -> usize {
        self.inner.lock().unwrap().events_open
    }

    /// `/health` body. Besides the lifecycle counters it carries the
    /// degraded-mode triple: the last fault seen (stage panic, feed
    /// hiccup, checkpoint-write error), the feed retry / rejection
    /// counters, and the checkpoint position with its lag behind the
    /// latest reported bin.
    pub fn health_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let latest = inner.entries.keys().next_back().copied();
        let degraded = inner.phase == Phase::Failed || inner.degraded.last_fault.is_some();
        let checkpoint = inner.degraded.last_checkpoint_bin.map_or(Value::Null, |b| {
            Value::object(vec![
                ("last_bin", Value::Number(b as f64)),
                (
                    "lag_bins",
                    Value::Number(latest.map_or(0, |l| l.saturating_sub(b)) as f64),
                ),
            ])
        });
        Value::object(vec![
            ("service", Value::String("pinpointd".to_string())),
            ("phase", Value::String(inner.phase.as_str().to_string())),
            ("ready", Value::Bool(!inner.entries.is_empty())),
            (
                "bins_collected",
                Value::Number(inner.counters.collected as f64),
            ),
            (
                "bins_reported",
                Value::Number(inner.counters.reported as f64),
            ),
            (
                "latest_bin",
                latest.map_or(Value::Null, |b| Value::Number(b as f64)),
            ),
            ("events_open", Value::Number(inner.events_open as f64)),
            ("degraded", Value::Bool(degraded)),
            (
                "last_fault",
                inner
                    .degraded
                    .last_fault
                    .as_ref()
                    .map_or(Value::Null, |f| Value::String(f.clone())),
            ),
            (
                "feed_retries",
                Value::Number(inner.degraded.feed_retries as f64),
            ),
            (
                "feed_rejected",
                Value::Number(inner.degraded.feed_rejected as f64),
            ),
            ("checkpoint", checkpoint),
        ])
        .to_string()
    }

    /// `/bins` body: every reported bin with its headline counters.
    pub fn bins_json(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let rows = inner
            .entries
            .iter()
            .map(|(bin, e)| {
                Value::object(vec![
                    ("bin", Value::Number(*bin as f64)),
                    ("records", Value::Number(e.records as f64)),
                    ("delay_alarms", Value::Number(e.delay_alarms as f64)),
                    (
                        "forwarding_alarms",
                        Value::Number(e.forwarding_alarms as f64),
                    ),
                    ("latency_ms", Value::Number(e.latency_ms)),
                ])
            })
            .collect();
        Value::object(vec![
            ("bins", Value::Array(rows)),
            (
                "latest",
                inner
                    .entries
                    .keys()
                    .next_back()
                    .map_or(Value::Null, |b| Value::Number(*b as f64)),
            ),
        ])
        .to_string()
    }

    /// `/asn/{id}/timeline` body, `None` when the AS was never scored.
    pub fn timeline_json(&self, asn: u32) -> Option<String> {
        let inner = self.inner.lock().unwrap();
        let points = inner.timelines.get(&asn)?;
        let rows = points
            .iter()
            .map(|p| {
                Value::object(vec![
                    ("bin", Value::Number(p.bin as f64)),
                    ("delay_severity", Value::Number(p.delay_severity)),
                    ("forwarding_severity", Value::Number(p.forwarding_severity)),
                    ("delay_magnitude", Value::Number(p.delay_magnitude)),
                    (
                        "forwarding_magnitude",
                        Value::Number(p.forwarding_magnitude),
                    ),
                ])
            })
            .collect();
        Some(
            Value::object(vec![
                ("asn", Value::Number(f64::from(asn))),
                ("points", Value::Array(rows)),
            ])
            .to_string(),
        )
    }

    /// `(last, mean, peak)` collect→report latency over every reported
    /// bin, in wall milliseconds — the number the `service_e2e` bench
    /// workload tracks PR over PR.
    pub fn latency_ms(&self) -> (f64, f64, f64) {
        let inner = self.inner.lock().unwrap();
        (
            inner.counters.latency_last_ms,
            mean_latency(&inner.counters),
            inner.counters.latency_peak_ms,
        )
    }

    /// `/stats` body; queue gauges are read live by the caller.
    pub fn stats_json(&self, collect: QueueGauge, report: QueueGauge) -> String {
        let inner = self.inner.lock().unwrap();
        let mean = mean_latency(&inner.counters);
        Value::object(vec![
            ("phase", Value::String(inner.phase.as_str().to_string())),
            (
                "bins_collected",
                Value::Number(inner.counters.collected as f64),
            ),
            (
                "bins_reported",
                Value::Number(inner.counters.reported as f64),
            ),
            ("ingest", render::ingest_stats(&inner.ingest)),
            ("sanitize", render::sanitize_stats(&inner.sanitize)),
            (
                "queues",
                Value::object(vec![("collect", collect.json()), ("report", report.json())]),
            ),
            (
                "latency_ms",
                Value::object(vec![
                    ("last", Value::Number(inner.counters.latency_last_ms)),
                    ("mean", Value::Number(mean)),
                    ("peak", Value::Number(inner.counters.latency_peak_ms)),
                ]),
            ),
        ])
        .to_string()
    }
}

fn mean_latency(counters: &Counters) -> f64 {
    if counters.reported > 0 {
        counters.latency_sum_ms / counters.reported as f64
    } else {
        0.0
    }
}
