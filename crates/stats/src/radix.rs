//! Stable LSD radix sort over `u64` composite keys.
//!
//! The engine's per-shard grouping sorts a run/row index by a packed
//! `u64` key where equal keys must keep their gather (= record) order.
//! A least-significant-digit radix sort is *stable by construction*, so
//! it replaces the comparison sort's explicit `(chunk, start)` tiebreak
//! for free — and runs in O(n · live_digits) instead of O(n log n).
//!
//! The keys are packed small dense ids (`local_id << 32 | slot`), so
//! most of the eight byte digits are constant across a shard's keys. A
//! cheap XOR-diff pre-pass finds the digits that actually vary; only
//! those pay a histogram + counting-sort pass (typically 1–3 for
//! realistic shards), and constant digits cost nothing — not even the
//! 1 KiB histogram zeroing.

/// Element count below which a comparison sort beats the histogram
/// pre-pass. Callers use this as the default small-N fallback threshold
/// (the engine's `radix_min_keys = 0` resolves to it).
pub const RADIX_MIN_KEYS: usize = 64;

/// Stable LSD radix sort of `data` by `key`, ascending.
///
/// `scratch` is the ping-pong buffer; it is cleared and resized to
/// `data.len()` — hand in a recycled buffer to make steady-state calls
/// allocation-free. After the call `data` is sorted and **equal keys
/// keep their input order** (stability), which is what lets the engine
/// drop its explicit gather-order tiebreak.
///
/// # Panics
/// Panics if `data.len()` exceeds `u32::MAX` (the counting buckets are
/// `u32`; shard-local indexes are far below that by construction).
pub fn sort_by_u64_key<T: Copy>(data: &mut Vec<T>, scratch: &mut Vec<T>, key: impl Fn(&T) -> u64) {
    let n = data.len();
    if n < 2 {
        return;
    }
    assert!(n <= u32::MAX as usize, "radix index overflows u32 counts");
    // XOR-diff pre-pass: a digit whose byte never differs from the first
    // key's is constant across the shard and already "sorted" — find
    // those with one OR per item so they never pay histogram zeroing or
    // a scatter pass. Packed small-id keys leave 5–7 of 8 digits dead.
    // The same pass watches for monotone input: gather emits runs in
    // first-appearance order, which is often already key order, and a
    // sorted input needs no passes at all (stability keeps ties put).
    let k0 = key(&data[0]);
    let mut diff = 0u64;
    let mut prev = k0;
    let mut descents = 0usize;
    for item in data.iter() {
        let k = key(item);
        diff |= k ^ k0;
        descents += usize::from(k < prev);
        prev = k;
    }
    if diff == 0 || descents == 0 {
        // All keys equal or already ascending: for a stable sort the
        // input order already stands.
        return;
    }
    if descents * 8 < n {
        // Nearly sorted — a handful of ascending runs, the shape a
        // chunked gather produces (each chunk emits keys in first-
        // appearance order). The standard library's stable sort merges
        // pre-sorted runs in ~O(n log runs), which beats paying every
        // radix pass; stability keeps the result identical.
        data.sort_by_key(key);
        return;
    }
    scratch.clear();
    scratch.resize(n, data[0]);
    for d in 0..8 {
        let shift = d * 8;
        if (diff >> shift) & 0xFF == 0 {
            continue;
        }
        // Histogram just this live digit, then turn it into exclusive
        // prefix sums (bucket start offsets) in place.
        let mut offsets = [0u32; 256];
        for item in data.iter() {
            offsets[((key(item) >> shift) & 0xFF) as usize] += 1;
        }
        let mut sum = 0u32;
        for o in offsets.iter_mut() {
            let count = *o;
            *o = sum;
            sum += count;
        }
        // Stable scatter: input order within a bucket is preserved.
        for item in data.iter() {
            let b = ((key(item) >> shift) & 0xFF) as usize;
            scratch[offsets[b] as usize] = *item;
            offsets[b] += 1;
        }
        std::mem::swap(data, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use proptest::prelude::*;

    fn radix_sorted(mut v: Vec<(u64, u32)>) -> Vec<(u64, u32)> {
        let mut scratch = Vec::new();
        sort_by_u64_key(&mut v, &mut scratch, |r| r.0);
        v
    }

    #[test]
    fn sorts_and_keeps_equal_keys_in_input_order() {
        // Payloads record input positions; equal keys must stay ordered.
        let input = vec![(3u64, 0u32), (1, 1), (3, 2), (1, 3), (2, 4), (1, 5)];
        assert_eq!(
            radix_sorted(input),
            vec![(1, 1), (1, 3), (1, 5), (2, 4), (3, 0), (3, 2)]
        );
    }

    #[test]
    fn trivial_inputs_are_untouched() {
        assert_eq!(radix_sorted(Vec::new()), Vec::new());
        assert_eq!(radix_sorted(vec![(9, 0)]), vec![(9, 0)]);
    }

    #[test]
    fn all_equal_keys_keep_order_exactly() {
        let input: Vec<(u64, u32)> = (0..100).map(|i| (42, i)).collect();
        assert_eq!(radix_sorted(input.clone()), input);
    }

    #[test]
    fn high_digit_spread_is_sorted() {
        // Keys differing only in the top byte exercise the last pass.
        let input: Vec<(u64, u32)> = (0..64u32).map(|i| ((64 - i as u64) << 56, i)).collect();
        let out = radix_sorted(input);
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn matches_stable_sort_on_packed_engine_keys() {
        // The engine's key shape: small dense id << 32 | small slot, with
        // heavy duplication — the realistic stress for the skip logic.
        let mut rng = SplitMix64::new(7);
        let mut v: Vec<(u64, u32)> = (0..5000)
            .map(|i| {
                let link = rng.next_raw() % 37;
                let probe = rng.next_raw() % 11;
                ((link << 32) | probe, i)
            })
            .collect();
        let mut want = v.clone();
        want.sort_by_key(|r| r.0); // std stable sort
        let mut scratch = Vec::new();
        sort_by_u64_key(&mut v, &mut scratch, |r| r.0);
        assert_eq!(v, want);
    }

    #[test]
    fn scratch_is_recycled_across_calls() {
        let mut scratch = Vec::new();
        for round in 0..3u64 {
            let mut v: Vec<(u64, u32)> = (0..200u32)
                .map(|i| ((round * 1000 + (200 - i as u64)), i))
                .collect();
            sort_by_u64_key(&mut v, &mut scratch, |r| r.0);
            assert!(v.windows(2).all(|w| w[0].0 <= w[1].0), "round {round}");
        }
    }

    proptest! {
        /// The tentpole parity argument: radix order on (key, chunk, start)
        /// triples equals the engine's old comparison sort — a stable sort
        /// by key alone reproduces the (key, chunk, start) tiebreak when
        /// the input arrives in (chunk, start) order, and equals the full
        /// composite sort in general when the payload rides in the key
        /// comparison. Both facets are checked here.
        #[test]
        fn prop_radix_matches_unstable_composite_sort(
            mut triples in prop::collection::vec(
                (0u64..50, 0u32..8, 0u32..1000), 0..400)
        ) {
            // The engine gathers runs in (chunk, start) order; model that.
            triples.sort_by_key(|t| (t.1, t.2));
            let mut want = triples.clone();
            want.sort_by_key(|t| (t.0, t.1, t.2));
            let mut got = triples;
            let mut scratch = Vec::new();
            sort_by_u64_key(&mut got, &mut scratch, |t| t.0);
            prop_assert_eq!(got, want);
        }

        #[test]
        fn prop_radix_matches_stable_sort_any_input(
            pairs in prop::collection::vec((0u64..=u64::MAX, 0u32..10_000), 0..300)
        ) {
            let mut want = pairs.clone();
            want.sort_by_key(|r| r.0);
            let mut got = pairs;
            let mut scratch = Vec::new();
            sort_by_u64_key(&mut got, &mut scratch, |r| r.0);
            prop_assert_eq!(got, want);
        }
    }
}
