//! # pinpoint-stats
//!
//! Robust statistics toolkit underpinning the `pinpoint` detection methods.
//!
//! The paper's central technical claim is that *robust statistics* — the
//! median, Wilson-score confidence intervals on order statistics, the median
//! absolute deviation — turn extremely noisy traceroute RTTs into stable,
//! normally-distributed estimators (§4.2.2). This crate implements every
//! statistical primitive the paper uses, from scratch:
//!
//! * [`quantile`] — medians, arbitrary quantiles, order statistics
//!   (quickselect), used for the median differential RTT;
//! * [`wilson`] — the Wilson score interval (Eq. 5) yielding distribution-free
//!   confidence intervals on the median;
//! * [`entropy`] — normalized Shannon entropy of probe-per-AS counts (§4.3);
//! * [`correlation`] — Pearson product-moment correlation for forwarding
//!   pattern comparison (§5.2.1);
//! * [`smoothing`] — exponential smoothing for scalar and vector references
//!   (Eq. 7 / Eq. 8);
//! * [`mad`] — median absolute deviation and the magnitude metric (Eq. 10);
//! * [`sliding`] — one-week sliding median/MAD windows (§6);
//! * [`normal`] — standard normal CDF/quantile functions and Q-Q utilities
//!   (Fig. 3 normality checks);
//! * [`ecdf`] — empirical CDF/CCDF and histograms (Fig. 5);
//! * [`radix`] — stable LSD radix sort over `u64` composite keys, the
//!   engine's grouping kernel (stability preserves gather order, so the
//!   parallel engine's byte-for-byte parity holds by construction);
//! * [`descriptive`] — mean/variance/skewness for the comparisons against
//!   non-robust estimators;
//! * [`rng`] and [`distributions`] — a deterministic, seedable RNG and the
//!   samplers (normal, log-normal, exponential, Pareto, Bernoulli) used by
//!   the simulator. `rand_distr` is not in the allowed dependency set, so
//!   these are implemented and tested here.
//!
//! All functions are pure and deterministic; nothing here allocates global
//! state, so the whole pipeline is reproducible from a single seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation;
pub mod descriptive;
pub mod distributions;
pub mod ecdf;
pub mod entropy;
pub mod mad;
pub mod normal;
pub mod quantile;
pub mod radix;
pub mod rng;
pub mod sliding;
pub mod smoothing;
pub mod wilson;

pub use correlation::pearson;
pub use descriptive::Summary;
pub use ecdf::Ecdf;
pub use entropy::normalized_entropy;
pub use mad::{mad, magnitude};
pub use quantile::{median, quantile, select_multi};
pub use radix::{sort_by_u64_key, RADIX_MIN_KEYS};
pub use rng::SplitMix64;
pub use sliding::SlidingRobust;
pub use smoothing::Ewma;
pub use wilson::{
    median_ci, median_ci_select, wilson_bounds, wilson_rank_bounds, ConfidenceInterval,
};
