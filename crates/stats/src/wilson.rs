//! Wilson score confidence intervals for the median (Eq. 5).
//!
//! The paper computes a distribution-free confidence interval on the median
//! by treating "sample below/above the median" as a Bernoulli(p = 0.5)
//! variable and applying the Wilson score interval (Wilson 1927), reported
//! to behave well even at small n (Newcombe 1998). The score yields two
//! fractions `w_l`, `w_u` in `[0,1]`; multiplied by n they give the *ranks*
//! of the order statistics bounding the interval:
//!
//! ```text
//! w = ( p + z²/2n ± z √(p(1−p)/n + z²/4n²) ) / (1 + z²/n)       (Eq. 5)
//! ```
//!
//! "Based solely on order statistics, the Wilson score produces asymmetric
//! confidence intervals in the case of skewed distributions" (§4.2.2) — the
//! asymmetry falls out naturally because the bounding order statistics of a
//! skewed sample are asymmetric around the median.

use crate::quantile::{median_sorted, select_kth, select_multi};

/// The z value for a 95 % confidence level, used throughout the paper.
pub const Z_95: f64 = 1.96;

/// Fractional rank bounds `(w_l, w_u)` of the Wilson score interval.
///
/// `p` is the quantile under test (0.5 for the median), `n` the sample
/// count, `z` the normal critical value ([`Z_95`] in the paper).
///
/// # Panics
/// Panics if `n == 0`, `p ∉ [0,1]`, or `z < 0`.
pub fn wilson_bounds(n: usize, p: f64, z: f64) -> (f64, f64) {
    assert!(n > 0, "wilson_bounds needs at least one sample");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!(z >= 0.0, "z must be non-negative");
    let nf = n as f64;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = p + z2 / (2.0 * nf);
    let spread = z * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt();
    let wl = ((center - spread) / denom).clamp(0.0, 1.0);
    let wu = ((center + spread) / denom).clamp(0.0, 1.0);
    (wl, wu)
}

/// The 0-based order-statistic indices `(li, ui)` bounding the Wilson
/// median CI for `n` samples at critical value `z`.
///
/// This is the canonical rank mapping shared by every CI path (sorted,
/// three-select, and single-partition): `l = n·w_l` floored, `u = n·w_u`
/// ceiled, both clamped into `[1, n]` and converted to 0-based indices so
/// small samples yield conservative (wide) intervals. The result depends
/// only on `(n, z)` — callers characterizing many same-sized sample sets
/// can compute it once per distinct `n` (see the engine's per-shard rank
/// cache).
///
/// # Panics
/// Panics if `n == 0` or `z < 0` (via [`wilson_bounds`]).
pub fn wilson_rank_bounds(n: usize, z: f64) -> (usize, usize) {
    let (wl, wu) = wilson_bounds(n, 0.5, z);
    let li = ((n as f64 * wl).floor() as usize).min(n - 1);
    let ui = ((n as f64 * wu).ceil() as usize).clamp(1, n) - 1;
    (li.min(ui), ui.max(li))
}

/// A median with its confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound of the interval.
    pub lower: f64,
    /// The median itself.
    pub median: f64,
    /// Upper bound of the interval.
    pub upper: f64,
    /// Number of samples the interval was computed from.
    pub n: usize,
}

impl ConfidenceInterval {
    /// Construct directly (used for references built from smoothed state).
    pub fn new(lower: f64, median: f64, upper: f64, n: usize) -> Self {
        debug_assert!(lower <= median && median <= upper, "unordered CI");
        ConfidenceInterval {
            lower,
            median,
            upper,
            n,
        }
    }

    /// Whether two intervals overlap (closed intervals).
    ///
    /// Non-overlap is the paper's significance test: "If the two confidence
    /// intervals are not overlapping, we conclude that there is a
    /// statistically significant difference between the two medians"
    /// (§4.2.3).
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lower <= other.upper && other.lower <= self.upper
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Median and Wilson-score CI of **sorted** samples.
///
/// Rank mapping follows the paper: `l = n·w_l`, `u = n·w_u`, bounds are the
/// order statistics `Δ(l)` and `Δ(u)`. Ranks are clamped into `[1, n]` and
/// converted to 0-based indices (floor for the lower rank, ceil for the
/// upper) so small samples yield conservative (wide) intervals.
///
/// Returns `None` on an empty slice.
pub fn median_ci_sorted(sorted: &[f64], z: f64) -> Option<ConfidenceInterval> {
    if sorted.is_empty() {
        return None;
    }
    let n = sorted.len();
    let med = median_sorted(sorted)?;
    let (li, ui) = wilson_rank_bounds(n, z);
    Some(ConfidenceInterval {
        lower: sorted[li].min(med),
        median: med,
        upper: sorted[ui].max(med),
        n,
    })
}

/// Median and Wilson-score CI of unsorted samples (sorts a copy).
pub fn median_ci(samples: &[f64], z: f64) -> Option<ConfidenceInterval> {
    let sorted = crate::quantile::sorted_copy(samples);
    median_ci_sorted(&sorted, z)
}

/// Order statistic `k` of `data` when `data[m_idx]` is already the selected
/// median pivot: everything left of `m_idx` is ≤ it, everything right is ≥
/// it, so the remaining selection can be confined to one partition.
fn order_stat_around_pivot(data: &mut [f64], m_idx: usize, k: usize) -> f64 {
    match k.cmp(&m_idx) {
        std::cmp::Ordering::Equal => data[m_idx],
        std::cmp::Ordering::Less => select_kth(&mut data[..m_idx], k),
        std::cmp::Ordering::Greater => select_kth(&mut data[m_idx + 1..], k - m_idx - 1),
    }
}

/// Median and Wilson-score CI via a **single-partition multiselect** — no
/// full sort, no repeated partitioning.
///
/// Produces results bit-identical to [`median_ci`] in expected O(n): the
/// median rank(s) and both Wilson ranks are pinned by one
/// [`select_multi`] pass, whose every Hoare partition serves all of them
/// at once (the top-level partition in particular is shared, where the
/// three-quickselect formulation re-partitions the region per rank — see
/// [`median_ci_select3`]). The buffer is permuted in place, which is
/// exactly what the bin engine wants — it hands in a scratch buffer it
/// reuses across links.
///
/// Non-finite values must be filtered by the caller (as with
/// [`median_ci`], they would poison comparisons). Returns `None` on an
/// empty slice.
pub fn median_ci_select(data: &mut [f64], z: f64) -> Option<ConfidenceInterval> {
    if data.is_empty() {
        return None;
    }
    let (li, ui) = wilson_rank_bounds(data.len(), z);
    median_ci_select_ranks(data, li, ui)
}

/// [`median_ci_select`] with the Wilson ranks precomputed — the engine's
/// per-shard characterization pass caches [`wilson_rank_bounds`] per
/// distinct sample count and calls this directly.
///
/// `(li, ui)` must come from `wilson_rank_bounds(data.len(), z)`; results
/// are then bit-identical to [`median_ci_select`].
pub fn median_ci_select_ranks(
    data: &mut [f64],
    li: usize,
    ui: usize,
) -> Option<ConfidenceInterval> {
    if data.is_empty() {
        return None;
    }
    let n = data.len();
    let m_idx = n / 2;
    // The full rank set, sorted and deduplicated: both Wilson bounds,
    // the upper central element, and for even n the lower central one
    // (li ≤ m_idx always; ui may sit at m_idx − 1, e.g. z = 0 on even n).
    let mut ks = [0usize; 4];
    let mut len = 0;
    for k in [
        li,
        m_idx.wrapping_sub(usize::from(n.is_multiple_of(2))),
        m_idx,
        ui,
    ] {
        if len == 0 || ks[len - 1] < k {
            ks[len] = k;
            len += 1;
        }
    }
    // `ui < m_idx - 1` cannot happen (wu ≥ 0.5 pins ui ≥ m_idx − 1), and
    // li ≤ ui, so the insertion order above is already ascending.
    debug_assert!(ks[..len].windows(2).all(|w| w[0] < w[1]));
    select_multi(data, &ks[..len]);
    let med = if n % 2 == 1 {
        data[m_idx]
    } else {
        // Both central order statistics are pinned; the mean matches the
        // fold-max recipe of `quantile::median` bit for bit (same two
        // order-statistic values, same operation order).
        (data[m_idx - 1] + data[m_idx]) / 2.0
    };
    Some(ConfidenceInterval {
        lower: data[li].min(med),
        median: med,
        upper: data[ui].max(med),
        n,
    })
}

/// The retained three-quickselect CI formulation: one select pins the
/// median, then each Wilson bound is selected inside the partition the
/// first select left behind. Kept as the proof bridge between the
/// full-sort path and the single-partition [`median_ci_select`] — the
/// property tests demand all three agree bit-for-bit.
pub fn median_ci_select3(data: &mut [f64], z: f64) -> Option<ConfidenceInterval> {
    if data.is_empty() {
        return None;
    }
    let n = data.len();
    let m_idx = n / 2;
    let hi = select_kth(data, m_idx);
    let med = if n % 2 == 1 {
        hi
    } else {
        // After selecting n/2, the other central element is the max of the
        // lower partition — same recipe as `quantile::median`.
        let lo = data[..m_idx]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        (lo + hi) / 2.0
    };
    // Identical rank mapping to `median_ci_sorted`.
    let (li, ui) = wilson_rank_bounds(n, z);
    let lower = order_stat_around_pivot(data, m_idx, li);
    let upper = order_stat_around_pivot(data, m_idx, ui);
    Some(ConfidenceInterval {
        lower: lower.min(med),
        median: med,
        upper: upper.max(med),
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use proptest::prelude::*;

    #[test]
    fn bounds_bracket_p() {
        let (wl, wu) = wilson_bounds(100, 0.5, Z_95);
        assert!(wl < 0.5 && 0.5 < wu);
        // Known closed-form check: n=100, p=0.5, z=1.96 →
        // w = (0.5 + 0.019208 ± 1.96*sqrt(0.0025+9.604e-5)) / 1.038416
        let denom = 1.0 + Z_95 * Z_95 / 100.0;
        let center = 0.5 + Z_95 * Z_95 / 200.0;
        let spread = Z_95 * (0.25 / 100.0 + Z_95 * Z_95 / 40_000.0).sqrt();
        assert!((wl - (center - spread) / denom).abs() < 1e-12);
        assert!((wu - (center + spread) / denom).abs() < 1e-12);
    }

    #[test]
    fn interval_narrows_with_n() {
        let (l1, u1) = wilson_bounds(10, 0.5, Z_95);
        let (l2, u2) = wilson_bounds(1000, 0.5, Z_95);
        assert!(u2 - l2 < u1 - l1);
    }

    #[test]
    fn z_zero_collapses_interval() {
        let (wl, wu) = wilson_bounds(50, 0.5, 0.0);
        assert!((wl - 0.5).abs() < 1e-12);
        assert!((wu - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_n_panics() {
        wilson_bounds(0, 0.5, Z_95);
    }

    #[test]
    fn ci_orders_bounds() {
        let data = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0];
        let ci = median_ci(&data, Z_95).unwrap();
        assert!(ci.lower <= ci.median && ci.median <= ci.upper);
        assert_eq!(ci.n, 7);
    }

    #[test]
    fn ci_single_sample_degenerates() {
        let ci = median_ci(&[4.2], Z_95).unwrap();
        assert_eq!((ci.lower, ci.median, ci.upper), (4.2, 4.2, 4.2));
    }

    #[test]
    fn overlap_logic() {
        let a = ConfidenceInterval::new(1.0, 2.0, 3.0, 10);
        let b = ConfidenceInterval::new(2.5, 3.5, 4.0, 10);
        let c = ConfidenceInterval::new(3.1, 4.0, 5.0, 10);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        // Touching endpoints count as overlap (conservative detector).
        let d = ConfidenceInterval::new(3.0, 3.2, 3.4, 10);
        assert!(a.overlaps(&d));
    }

    #[test]
    fn skewed_sample_gives_asymmetric_interval() {
        // Log-normal-ish right-skewed data: upper arm should be longer.
        let mut rng = SplitMix64::new(77);
        let data: Vec<f64> = (0..500)
            .map(|_| (-2.0 * rng.next_f64().max(1e-12).ln()).exp())
            .collect();
        let ci = median_ci(&data, Z_95).unwrap();
        let lower_arm = ci.median - ci.lower;
        let upper_arm = ci.upper - ci.median;
        assert!(
            upper_arm > lower_arm,
            "expected right-skewed asymmetry: {lower_arm} vs {upper_arm}"
        );
    }

    #[test]
    fn coverage_is_near_95_percent() {
        // Empirical coverage check for the CLT-variant machinery: the true
        // median of U(0,1) is 0.5; the Wilson CI should contain it ~95 % of
        // the time.
        let mut rng = SplitMix64::new(123);
        let trials = 2000;
        let mut hits = 0;
        for _ in 0..trials {
            let data: Vec<f64> = (0..61).map(|_| rng.next_f64()).collect();
            let ci = median_ci(&data, Z_95).unwrap();
            if ci.lower <= 0.5 && 0.5 <= ci.upper {
                hits += 1;
            }
        }
        let coverage = f64::from(hits) / f64::from(trials);
        assert!(
            (0.92..=0.995).contains(&coverage),
            "coverage {coverage} outside tolerance"
        );
    }

    proptest! {
        #[test]
        fn prop_bounds_ordered_and_in_unit(n in 1usize..5000, p in 0.0f64..=1.0, z in 0.0f64..5.0) {
            let (wl, wu) = wilson_bounds(n, p, z);
            prop_assert!((0.0..=1.0).contains(&wl));
            prop_assert!((0.0..=1.0).contains(&wu));
            prop_assert!(wl <= wu);
        }

        #[test]
        fn prop_ci_contains_median(data in prop::collection::vec(-1e5f64..1e5, 1..300)) {
            let ci = median_ci(&data, Z_95).unwrap();
            prop_assert!(ci.lower <= ci.median);
            prop_assert!(ci.median <= ci.upper);
        }

        #[test]
        fn prop_ci_bounds_are_sample_values(data in prop::collection::vec(-1e3f64..1e3, 3..100)) {
            let ci = median_ci(&data, Z_95).unwrap();
            let close = |target: f64| data.iter().any(|x| (x - target).abs() < 1e-9);
            // Bounds are order statistics of the sample (or the median for
            // even n, which may interpolate).
            prop_assert!(close(ci.lower) || (ci.lower - ci.median).abs() < 1e-9);
            prop_assert!(close(ci.upper) || (ci.upper - ci.median).abs() < 1e-9);
        }

        #[test]
        fn prop_select_matches_sort_path(
            data in prop::collection::vec(-1e5f64..1e5, 1..300),
            z in 0.0f64..4.0,
        ) {
            // The three CI formulations — single-partition multiselect,
            // three confined quickselects, full sort — must be
            // bit-identical; the engine-parity guarantee rests on it.
            let mut buf = data.clone();
            let fast = median_ci_select(&mut buf, z).unwrap();
            let mut buf3 = data.clone();
            let three = median_ci_select3(&mut buf3, z).unwrap();
            let slow = median_ci(&data, z).unwrap();
            prop_assert_eq!(fast, slow);
            prop_assert_eq!(three, slow);
            // And both buffers are permutations of the input.
            let mut b = data;
            b.sort_by(|x, y| x.partial_cmp(y).unwrap());
            for mut a in [buf, buf3] {
                a.sort_by(|x, y| x.partial_cmp(y).unwrap());
                prop_assert_eq!(&a, &b);
            }
        }

        #[test]
        fn prop_cached_ranks_match_direct_select(
            data in prop::collection::vec(-1e4f64..1e4, 1..200),
            z in 0.0f64..4.0,
        ) {
            // The engine's rank-cache path: precomputed ranks must give
            // the identical interval.
            let (li, ui) = wilson_rank_bounds(data.len(), z);
            let mut a = data.clone();
            let mut b = data;
            prop_assert_eq!(
                median_ci_select_ranks(&mut a, li, ui),
                median_ci_select(&mut b, z)
            );
        }
    }

    #[test]
    fn select_ci_small_inputs_match() {
        for n in 1..24usize {
            let data: Vec<f64> = (0..n).map(|i| ((i * 7919) % 23) as f64 * 0.5).collect();
            let mut buf = data.clone();
            assert_eq!(
                median_ci_select(&mut buf, Z_95),
                median_ci(&data, Z_95),
                "n={n}"
            );
            let mut buf3 = data.clone();
            assert_eq!(
                median_ci_select3(&mut buf3, Z_95),
                median_ci(&data, Z_95),
                "select3 n={n}"
            );
        }
    }

    #[test]
    fn z_zero_even_n_pins_both_central_ranks() {
        // z = 0 on even n drives the Wilson upper rank *below* the median
        // index (ui = m_idx − 1) — the corner the rank-set construction
        // must survive.
        for data in [vec![4.0, 1.0], vec![7.0, 3.0, 9.0, 1.0, 5.0, 2.0]] {
            let mut buf = data.clone();
            assert_eq!(median_ci_select(&mut buf, 0.0), median_ci(&data, 0.0));
        }
    }

    #[test]
    fn rank_bounds_are_ordered_and_in_range() {
        for n in 1..200usize {
            let (li, ui) = wilson_rank_bounds(n, Z_95);
            assert!(li <= ui && ui < n, "n={n}: ({li}, {ui})");
        }
    }

    #[test]
    fn select_ci_empty_is_none() {
        assert_eq!(median_ci_select(&mut [], Z_95), None);
        assert_eq!(median_ci_select3(&mut [], Z_95), None);
        assert_eq!(median_ci_select_ranks(&mut [], 0, 0), None);
    }
}
