//! Normalized Shannon entropy of count vectors.
//!
//! Used by the probe-diversity criterion (§4.3): with `A = {a_i}` the number
//! of probes per AS monitoring a link,
//!
//! ```text
//! H(A) = −(1/ln n) Σ P(a_i) ln P(a_i)
//! ```
//!
//! `H ≈ 0` means probes concentrate in one AS (differential RTTs dominated
//! by a shared return path); `H ≈ 1` means even dispersion. Links require
//! `H(A) > 0.5` after rebalancing.

/// Normalized Shannon entropy of non-negative counts.
///
/// Zero counts are ignored. Returns:
/// * `None` if the vector has no positive counts;
/// * `Some(1.0)` for a single positive count (`n = 1`): by convention a
///   single category is "maximally concentrated", but the normalization
///   `1/ln 1` is undefined — the paper's criterion pairs entropy with the
///   ≥3-AS rule, so n = 1 never reaches it. We return 0.0 to mark total
///   concentration.
pub fn normalized_entropy(counts: &[u32]) -> Option<f64> {
    let positive: Vec<f64> = counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| f64::from(c))
        .collect();
    if positive.is_empty() {
        return None;
    }
    if positive.len() == 1 {
        return Some(0.0);
    }
    let total: f64 = positive.iter().sum();
    let n = positive.len() as f64;
    let h: f64 = positive
        .iter()
        .map(|&c| {
            let p = c / total;
            -p * p.ln()
        })
        .sum();
    Some(h / n.ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_counts_have_unit_entropy() {
        assert!((normalized_entropy(&[5, 5, 5, 5]).unwrap() - 1.0).abs() < 1e-12);
        assert!((normalized_entropy(&[1, 1]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concentration_drives_entropy_down() {
        let balanced = normalized_entropy(&[10, 10, 10]).unwrap();
        let skewed = normalized_entropy(&[90, 5, 5]).unwrap();
        let extreme = normalized_entropy(&[998, 1, 1]).unwrap();
        assert!(balanced > skewed && skewed > extreme);
    }

    #[test]
    fn paper_example_unbalanced_probes() {
        // §4.3: 100 probes in 5 ASes, 90 of them in one AS → low entropy,
        // fails the H > 0.5 criterion.
        let h = normalized_entropy(&[90, 4, 3, 2, 1]).unwrap();
        assert!(h < 0.5, "H = {h}");
        // Evenly spread across 5 ASes → passes.
        let h2 = normalized_entropy(&[20, 20, 20, 20, 20]).unwrap();
        assert!(h2 > 0.5);
    }

    #[test]
    fn zero_counts_are_ignored() {
        assert_eq!(
            normalized_entropy(&[5, 0, 5, 0]),
            normalized_entropy(&[5, 5])
        );
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(normalized_entropy(&[]), None);
        assert_eq!(normalized_entropy(&[0, 0]), None);
        assert_eq!(normalized_entropy(&[7]), Some(0.0));
    }

    proptest! {
        #[test]
        fn prop_entropy_in_unit_interval(counts in prop::collection::vec(0u32..1000, 1..50)) {
            if let Some(h) = normalized_entropy(&counts) {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&h), "H = {h}");
            }
        }

        #[test]
        fn prop_entropy_permutation_invariant(mut counts in prop::collection::vec(1u32..100, 2..20)) {
            let h1 = normalized_entropy(&counts).unwrap();
            counts.reverse();
            let h2 = normalized_entropy(&counts).unwrap();
            // Tolerance: float summation order differs after permutation.
            prop_assert!((h1 - h2).abs() < 1e-12);
        }

        #[test]
        fn prop_entropy_scale_invariant(counts in prop::collection::vec(1u32..50, 2..20), k in 1u32..10) {
            let h1 = normalized_entropy(&counts).unwrap();
            let scaled: Vec<u32> = counts.iter().map(|c| c * k).collect();
            let h2 = normalized_entropy(&scaled).unwrap();
            prop_assert!((h1 - h2).abs() < 1e-9);
        }
    }
}
