//! Exponential smoothing for scalar and vector references.
//!
//! Both detectors maintain their "normal reference" with exponential
//! smoothing: the delay detector smooths the median and the CI bounds
//! (Eq. 7, §4.2.4); the forwarding detector smooths the per-hop packet-count
//! vector (Eq. 8, §5.1):
//!
//! ```text
//! m̄_t = α m_t + (1 − α) m̄_{t−1}
//! ```
//!
//! A small α "mitigates the impact of anomalous values"; the initial value
//! m̄₀ matters when α is small, so the delay detector warms up with
//! `m̄₀ = median(m₁, m₂, m₃)` (handled by the caller; see
//! `pinpoint-core::diffrtt::reference`).

/// Scalar exponential smoother (Eq. 7).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create an empty smoother with the given α ∈ (0, 1].
    ///
    /// # Panics
    /// Panics if α is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha {alpha} outside (0, 1]");
        Ewma { alpha, value: None }
    }

    /// Create a smoother pre-seeded with an initial value.
    pub fn with_initial(alpha: f64, initial: f64) -> Self {
        let mut e = Ewma::new(alpha);
        e.value = Some(initial);
        e
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current smoothed value, if any observation has been folded in.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Fold in an observation and return the updated smoothed value.
    ///
    /// The first observation initializes the state (m̄₀ = m₁) unless the
    /// smoother was created via [`Ewma::with_initial`].
    pub fn update(&mut self, x: f64) -> f64 {
        let next = match self.value {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        };
        self.value = Some(next);
        next
    }

    /// Replace the current state (used by warm-up logic).
    pub fn reset_to(&mut self, x: f64) {
        self.value = Some(x);
    }
}

/// Vector exponential smoother over a sparse key space (Eq. 8).
///
/// Keys are next-hop identifiers; values are packet counts. Alignment
/// follows the paper: "If the hop i is unseen at time t then p_i = 0,
/// similarly, if the hop i is observed for the first time at time t then
/// p̄_i = 0."
#[derive(Debug, Clone, PartialEq)]
pub struct VectorEwma<K: Ord + Clone> {
    alpha: f64,
    values: std::collections::BTreeMap<K, f64>,
}

impl<K: Ord + Clone> VectorEwma<K> {
    /// Create an empty vector smoother with the given α ∈ (0, 1].
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha {alpha} outside (0, 1]");
        VectorEwma {
            alpha,
            values: std::collections::BTreeMap::new(),
        }
    }

    /// Rebuild a smoother from its α and `(key, smoothed value)` pairs —
    /// the snapshot/restore constructor. Equivalent to replaying the
    /// observation history that produced those values.
    pub fn from_parts<I>(alpha: f64, values: I) -> Self
    where
        I: IntoIterator<Item = (K, f64)>,
    {
        let mut v = VectorEwma::new(alpha);
        v.values = values.into_iter().collect();
        v
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Whether no observation has been folded in yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Smoothed value for a key (0 when never observed).
    pub fn get(&self, key: &K) -> f64 {
        self.values.get(key).copied().unwrap_or(0.0)
    }

    /// Iterate over `(key, smoothed value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, f64)> {
        self.values.iter().map(|(k, v)| (k, *v))
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Fold in an observed count vector.
    ///
    /// The first observation initializes the reference to the observation
    /// itself (F̄₀ = F₁). Subsequent updates apply Eq. 8 across the union of
    /// tracked and observed keys. Keys whose smoothed value decays below
    /// `prune_below` are dropped to bound memory.
    pub fn update<I>(&mut self, observed: I, prune_below: f64)
    where
        I: IntoIterator<Item = (K, f64)>,
    {
        let observed: std::collections::BTreeMap<K, f64> = observed.into_iter().collect();
        if self.values.is_empty() {
            self.values = observed;
            return;
        }
        let keys: Vec<K> = self
            .values
            .keys()
            .chain(observed.keys())
            .cloned()
            .collect::<std::collections::BTreeSet<K>>()
            .into_iter()
            .collect();
        for k in keys {
            let old = self.values.get(&k).copied().unwrap_or(0.0);
            let new = observed.get(&k).copied().unwrap_or(0.0);
            let smoothed = self.alpha * new + (1.0 - self.alpha) * old;
            if smoothed < prune_below {
                self.values.remove(&k);
            } else {
                self.values.insert(k, smoothed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_update_initializes() {
        let mut e = Ewma::new(0.01);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(5.0), 5.0);
        assert_eq!(e.value(), Some(5.0));
    }

    #[test]
    fn smoothing_formula() {
        let mut e = Ewma::with_initial(0.1, 10.0);
        let v = e.update(20.0);
        assert!((v - 11.0).abs() < 1e-12);
    }

    #[test]
    fn small_alpha_resists_outliers() {
        // The paper's rationale for small α: one outlier barely moves the
        // reference.
        let mut e = Ewma::with_initial(0.01, 5.0);
        e.update(500.0);
        assert!((e.value().unwrap() - 9.95).abs() < 1e-9);
        // ... but persistent shifts eventually win.
        let mut e2 = Ewma::with_initial(0.01, 5.0);
        for _ in 0..1000 {
            e2.update(500.0);
        }
        assert!(e2.value().unwrap() > 490.0);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn alpha_zero_panics() {
        Ewma::new(0.0);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn alpha_above_one_panics() {
        Ewma::new(1.5);
    }

    #[test]
    fn alpha_one_tracks_input() {
        let mut e = Ewma::new(1.0);
        e.update(3.0);
        e.update(7.0);
        assert_eq!(e.value(), Some(7.0));
    }

    #[test]
    fn vector_first_update_initializes() {
        let mut v: VectorEwma<&str> = VectorEwma::new(0.1);
        v.update(vec![("a", 10.0), ("b", 100.0)], 0.0);
        assert_eq!(v.get(&"a"), 10.0);
        assert_eq!(v.get(&"b"), 100.0);
        assert_eq!(v.get(&"zzz"), 0.0);
    }

    #[test]
    fn vector_aligns_missing_keys_to_zero() {
        let mut v: VectorEwma<&str> = VectorEwma::new(0.5);
        v.update(vec![("a", 10.0), ("b", 100.0)], 0.0);
        // "a" disappears, "c" appears.
        v.update(vec![("b", 100.0), ("c", 20.0)], 0.0);
        assert!((v.get(&"a") - 5.0).abs() < 1e-12); // 0.5*0 + 0.5*10
        assert!((v.get(&"b") - 100.0).abs() < 1e-12);
        assert!((v.get(&"c") - 10.0).abs() < 1e-12); // 0.5*20 + 0.5*0
    }

    #[test]
    fn vector_prunes_decayed_keys() {
        let mut v: VectorEwma<&str> = VectorEwma::new(0.5);
        v.update(vec![("a", 1.0)], 0.0);
        for _ in 0..20 {
            v.update(vec![("b", 1.0)], 1e-3);
        }
        assert_eq!(v.get(&"a"), 0.0);
        assert_eq!(v.len(), 1);
    }

    proptest! {
        #[test]
        fn prop_ewma_stays_within_observed_range(alpha in 0.001f64..1.0, xs in prop::collection::vec(-1e4f64..1e4, 1..100)) {
            let mut e = Ewma::new(alpha);
            for &x in &xs {
                e.update(x);
            }
            let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let v = e.value().unwrap();
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }

        #[test]
        fn prop_ewma_converges_to_constant(alpha in 0.01f64..1.0, target in -100.0f64..100.0) {
            let mut e = Ewma::with_initial(alpha, 0.0);
            for _ in 0..5000 {
                e.update(target);
            }
            prop_assert!((e.value().unwrap() - target).abs() < 1.0 + target.abs() * 0.05);
        }
    }
}
