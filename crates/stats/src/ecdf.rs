//! Empirical distribution functions and histograms.
//!
//! Figure 5 of the paper plots the distribution of hourly magnitudes across
//! all ASes: a CCDF for delay changes (5a, heavy right tail) and a CDF for
//! forwarding anomalies (5b, heavy left tail). [`Ecdf`] provides both views
//! plus tail-probability queries like "97 % of the time the magnitude is
//! below 1".

/// Empirical cumulative distribution of a sample.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample (copies and sorts; non-finite values dropped).
    pub fn new(data: &[f64]) -> Self {
        let mut sorted: Vec<f64> = data.iter().copied().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ecdf { sorted }
    }

    /// Number of (finite) samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≤ x).
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// P(X > x) — the complementary CDF of Fig. 5a.
    pub fn ccdf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Empirical quantile (inverse CDF), `q ∈ [0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        crate::quantile::quantile_sorted(&self.sorted, q)
    }

    /// Evaluate the CDF at evenly spaced points across the sample range.
    ///
    /// Returns `(x, cdf(x))` pairs — the series behind Fig. 5b.
    pub fn cdf_series(&self, points: usize) -> Vec<(f64, f64)> {
        self.series(points, |s, x| s.cdf(x))
    }

    /// Evaluate the CCDF across the sample range (Fig. 5a series).
    pub fn ccdf_series(&self, points: usize) -> Vec<(f64, f64)> {
        self.series(points, |s, x| s.ccdf(x))
    }

    fn series(&self, points: usize, f: impl Fn(&Self, f64) -> f64) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points < 2 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().unwrap();
        let step = (hi - lo) / (points - 1) as f64;
        (0..points)
            .map(|i| {
                let x = lo + step * i as f64;
                (x, f(self, x))
            })
            .collect()
    }
}

/// A fixed-width histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "hi must exceed lo");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record a value.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() || x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// `(bin center, count)` pairs.
    pub fn bins(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + w * (i as f64 + 0.5), c))
            .collect()
    }

    /// Total recorded values, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cdf_step_behaviour() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.ccdf(2.5), 0.5);
        assert_eq!(e.ccdf(100.0), 0.0);
    }

    #[test]
    fn non_finite_dropped() {
        let e = Ecdf::new(&[1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn empty_cdf_is_nan() {
        let e = Ecdf::new(&[]);
        assert!(e.cdf(1.0).is_nan());
        assert!(e.is_empty());
        assert!(e.cdf_series(10).is_empty());
    }

    #[test]
    fn series_covers_range_monotonically() {
        let data: Vec<f64> = (0..100).map(f64::from).collect();
        let e = Ecdf::new(&data);
        let series = e.cdf_series(20);
        assert_eq!(series.len(), 20);
        assert_eq!(series[0].0, 0.0);
        assert_eq!(series[19].0, 99.0);
        for w in series.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        let cc = e.ccdf_series(20);
        for w in cc.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn quantile_matches_cdf() {
        let data: Vec<f64> = (1..=100).map(f64::from).collect();
        let e = Ecdf::new(&data);
        let q90 = e.quantile(0.9).unwrap();
        assert!((89.0..=92.0).contains(&q90), "q90 = {q90}");
    }

    #[test]
    fn histogram_basic() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 2.9, 9.9, -1.0, 10.0, f64::NAN] {
            h.push(x);
        }
        assert_eq!(h.count(0), 2); // 0.5, 1.5
        assert_eq!(h.count(1), 2); // 2.5, 2.9
        assert_eq!(h.count(4), 1); // 9.9
        assert_eq!(h.underflow, 2); // -1.0, NaN
        assert_eq!(h.overflow, 1); // 10.0
        assert_eq!(h.total(), 8);
        assert_eq!(h.bins()[0].0, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    proptest! {
        #[test]
        fn prop_cdf_monotone(data in prop::collection::vec(-1e4f64..1e4, 1..200), a in -1e4f64..1e4, b in -1e4f64..1e4) {
            let e = Ecdf::new(&data);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(e.cdf(lo) <= e.cdf(hi) + 1e-12);
        }

        #[test]
        fn prop_cdf_plus_ccdf_is_one(data in prop::collection::vec(-1e4f64..1e4, 1..100), x in -1e4f64..1e4) {
            let e = Ecdf::new(&data);
            prop_assert!((e.cdf(x) + e.ccdf(x) - 1.0).abs() < 1e-12);
        }

        #[test]
        fn prop_histogram_conserves_count(data in prop::collection::vec(-100.0f64..100.0, 0..200)) {
            let mut h = Histogram::new(-50.0, 50.0, 10);
            for &x in &data {
                h.push(x);
            }
            prop_assert_eq!(h.total(), data.len() as u64);
        }
    }
}
