//! Standard normal distribution functions and Q-Q utilities.
//!
//! Figure 3 of the paper validates the median-CLT variant with a Q-Q plot:
//! hourly median differential RTTs against theoretical normal quantiles.
//! This module supplies:
//!
//! * [`phi`]/[`norm_cdf`] — standard normal PDF/CDF (via an Abramowitz &
//!   Stegun `erf` approximation, |error| < 1.5e-7);
//! * [`norm_ppf`] — inverse CDF (Acklam's rational approximation refined by
//!   one Halley step, |relative error| < 1e-9);
//! * [`qq_points`] — sample-vs-theoretical quantile pairs in standardized
//!   units, exactly the data behind a Q-Q plot;
//! * [`qq_correlation`] — the correlation of those pairs, a Shapiro–Francia
//!   style normality score (≈ 1 for normal samples).

use crate::descriptive::Summary;

/// Standard normal probability density.
pub fn phi(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Error function, Abramowitz & Stegun 7.1.26 (|ε| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    // The polynomial evaluates to ~1e-9 at zero; pin the exact value so the
    // function is odd everywhere, including the origin.
    if x == 0.0 {
        return 0.0;
    }
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse standard normal CDF (percent-point function).
///
/// Acklam's rational approximation with one Halley refinement step.
///
/// # Panics
/// Panics if `p` is outside `(0, 1)`.
#[allow(clippy::excessive_precision)] // published Acklam coefficients, verbatim
pub fn norm_ppf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "norm_ppf requires p in (0,1), got {p}");

    // Coefficients for the central and tail rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step sharpens the approximation to ~1e-9.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Q-Q plot data: `(theoretical quantile, standardized sample quantile)`.
///
/// Samples are standardized by their own mean/σ (as in the paper's figure,
/// where both axes are in standard units). Theoretical quantiles use the
/// Blom plotting positions `(i − 3/8) / (n + 1/4)`.
///
/// Returns an empty vector for fewer than 3 samples or zero variance.
pub fn qq_points(samples: &[f64]) -> Vec<(f64, f64)> {
    let n = samples.len();
    if n < 3 {
        return Vec::new();
    }
    let summary = Summary::from_slice(samples);
    let sd = summary.std_dev();
    if sd <= 0.0 {
        return Vec::new();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
    sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let p = (i as f64 + 1.0 - 0.375) / (n as f64 + 0.25);
            (norm_ppf(p), (x - summary.mean()) / sd)
        })
        .collect()
}

/// Correlation between theoretical and sample quantiles (normality score).
///
/// A value near 1 indicates the sample is consistent with a normal
/// distribution — the paper's Fig. 3a case. Heavy-tailed/outlier-ridden
/// samples (Fig. 3b, the mean-based estimator) score visibly lower.
pub fn qq_correlation(samples: &[f64]) -> Option<f64> {
    let pts = qq_points(samples);
    if pts.is_empty() {
        return None;
    }
    let (theo, samp): (Vec<f64>, Vec<f64>) = pts.into_iter().unzip();
    crate::correlation::pearson(&theo, &samp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::Normal;
    use crate::rng::SplitMix64;
    use proptest::prelude::*;

    #[test]
    fn cdf_known_values() {
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((norm_cdf(-1.96) - 0.025).abs() < 1e-4);
        assert!(norm_cdf(6.0) > 0.999999);
        assert!(norm_cdf(-6.0) < 1e-6);
    }

    #[test]
    fn ppf_known_values() {
        // erf's polynomial approximation leaves ~1e-9 residual at 0.
        assert!(norm_ppf(0.5).abs() < 1e-7);
        assert!((norm_ppf(0.975) - 1.959_964).abs() < 1e-5);
        assert!((norm_ppf(0.025) + 1.959_964).abs() < 1e-5);
        assert!((norm_ppf(0.841_344_746) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "in (0,1)")]
    fn ppf_rejects_boundaries() {
        norm_ppf(0.0);
    }

    #[test]
    fn cdf_ppf_round_trip() {
        for i in 1..100 {
            let p = f64::from(i) / 100.0;
            let x = norm_ppf(p);
            assert!((norm_cdf(x) - p).abs() < 1e-6, "p = {p}");
        }
    }

    #[test]
    fn phi_integrates_to_one() {
        // Trapezoidal integration over [-8, 8].
        let n = 16_000;
        let h = 16.0 / n as f64;
        let total: f64 = (0..=n)
            .map(|i| {
                let x = -8.0 + h * i as f64;
                let w = if i == 0 || i == n { 0.5 } else { 1.0 };
                w * phi(x)
            })
            .sum::<f64>()
            * h;
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn qq_normal_sample_scores_high() {
        let mut rng = SplitMix64::new(42);
        let normal = Normal::new(5.0, 2.0);
        let data: Vec<f64> = (0..500).map(|_| normal.sample(&mut rng)).collect();
        let r = qq_correlation(&data).unwrap();
        assert!(r > 0.995, "normal sample scored {r}");
    }

    #[test]
    fn qq_outlier_sample_scores_lower() {
        // Mimics Fig. 3b: mostly normal with gross outliers.
        let mut rng = SplitMix64::new(43);
        let normal = Normal::new(5.0, 1.0);
        let mut data: Vec<f64> = (0..500).map(|_| normal.sample(&mut rng)).collect();
        for i in 0..25 {
            data[i * 20] = 500.0 + i as f64;
        }
        let clean = qq_correlation(&data[1..40]).unwrap_or(1.0);
        let dirty = qq_correlation(&data).unwrap();
        assert!(dirty < 0.8, "outlier sample scored {dirty} (clean {clean})");
    }

    #[test]
    fn qq_points_are_monotone() {
        let data = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.3];
        let pts = qq_points(&data);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn qq_degenerate_inputs() {
        assert!(qq_points(&[1.0, 2.0]).is_empty());
        assert!(qq_points(&[5.0; 10]).is_empty());
        assert_eq!(qq_correlation(&[5.0; 10]), None);
    }

    proptest! {
        #[test]
        fn prop_cdf_monotone(a in -6.0f64..6.0, b in -6.0f64..6.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(norm_cdf(lo) <= norm_cdf(hi) + 1e-12);
        }

        #[test]
        fn prop_ppf_cdf_inverse(p in 0.001f64..0.999) {
            prop_assert!((norm_cdf(norm_ppf(p)) - p).abs() < 1e-6);
        }

        #[test]
        fn prop_erf_odd(x in 0.0f64..5.0) {
            prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
        }
    }
}
