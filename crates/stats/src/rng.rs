//! Deterministic random number generation.
//!
//! Every stochastic component of the simulator draws from a generator seeded
//! from a single scenario seed, so that each figure in the evaluation is
//! exactly reproducible. Two pieces:
//!
//! * [`SplitMix64`] — a tiny, fast, well-distributed 64-bit generator
//!   (Steele et al., *Fast Splittable Pseudorandom Number Generators*). It
//!   implements [`rand::RngCore`] so it plugs into the `rand` ecosystem.
//! * [`derive_seed`] — stable FNV-1a-based sub-seed derivation: components
//!   get independent streams from `(master_seed, label)` without coordination.

use rand::RngCore;

/// SplitMix64 pseudo-random generator.
///
/// Passes BigCrush when used as a 64-bit generator; period 2^64. Not
/// cryptographic — it is used only to drive simulations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_raw(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)` with 53-bit precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        loop {
            let x = self.next_raw();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn next_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Split off an independent child generator.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_raw())
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_raw().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Derive a stable sub-seed from a master seed and a textual label.
///
/// FNV-1a over the label, mixed with the master seed through one SplitMix64
/// round. Identical `(seed, label)` pairs always yield the same sub-seed;
/// distinct labels yield effectively independent streams.
pub fn derive_seed(master: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    SplitMix64::new(master ^ h).next_raw()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_raw() == b.next_raw()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SplitMix64::new(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_is_unbiased_enough() {
        let mut r = SplitMix64::new(11);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[r.next_below(5) as usize] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = SplitMix64::new(5);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_raw(), c2.next_raw());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn derive_seed_stability_and_separation() {
        assert_eq!(derive_seed(1, "delay"), derive_seed(1, "delay"));
        assert_ne!(derive_seed(1, "delay"), derive_seed(1, "loss"));
        assert_ne!(derive_seed(1, "delay"), derive_seed(2, "delay"));
    }

    #[test]
    fn rngcore_fill_bytes() {
        let mut r = SplitMix64::new(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn next_bool_extremes() {
        let mut r = SplitMix64::new(8);
        assert!(!r.next_bool(0.0));
        assert!(r.next_bool(1.0));
        // Out-of-range p is clamped rather than panicking.
        assert!(r.next_bool(2.0));
        assert!(!r.next_bool(-1.0));
    }
}
