//! Median absolute deviation and the event magnitude metric (Eq. 10).
//!
//! AS-level event detection (§6) normalizes each severity time series by its
//! one-week sliding median and MAD:
//!
//! ```text
//! mag(X) = (X − median(X)) / (1 + 1.4826 · MAD(X))
//! ```
//!
//! The `1.4826` factor makes the MAD a consistent estimator of the standard
//! deviation under normality (Wilcox 2010); the `1 +` in the denominator
//! keeps the metric finite when the window is perfectly quiet (MAD = 0).

use crate::quantile::median;

/// Consistency constant making MAD comparable to σ under normality.
pub const MAD_TO_SIGMA: f64 = 1.4826;

/// Median absolute deviation of a sample: `median(|x − median(x)|)`.
///
/// Returns `None` on an empty slice.
pub fn mad(data: &[f64]) -> Option<f64> {
    let m = median(data)?;
    let deviations: Vec<f64> = data.iter().map(|x| (x - m).abs()).collect();
    median(&deviations)
}

/// Magnitude of the latest value against a window (Eq. 10).
///
/// `window` is the sliding history (the paper uses one week of hourly bins)
/// and `x` the value to score. Returns `None` when the window is empty.
pub fn magnitude(window: &[f64], x: f64) -> Option<f64> {
    let med = median(window)?;
    let dev = mad(window)?;
    Some((x - med) / (1.0 + MAD_TO_SIGMA * dev))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mad_of_symmetric_sample() {
        // median = 3, |x−3| = [2,1,0,1,2] → MAD = 1.
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 5.0]), Some(1.0));
    }

    #[test]
    fn mad_constant_series_is_zero() {
        assert_eq!(mad(&[4.0; 10]), Some(0.0));
        assert_eq!(mad(&[]), None);
    }

    #[test]
    fn mad_is_outlier_robust() {
        let mut xs: Vec<f64> = (0..100).map(f64::from).collect();
        let clean = mad(&xs).unwrap();
        xs[0] = 1e9;
        let dirty = mad(&xs).unwrap();
        assert!((dirty - clean).abs() <= 1.0);
    }

    #[test]
    fn magnitude_zero_for_typical_value() {
        let window: Vec<f64> = (0..168).map(|i| f64::from(i % 5)).collect();
        let med = median(&window).unwrap();
        assert_eq!(magnitude(&window, med), Some(0.0));
    }

    #[test]
    fn magnitude_finite_on_quiet_window() {
        // All-zero window (an AS with no alarms all week): MAD = 0, the
        // `1 +` denominator keeps the spike finite and equal to the raw
        // deviation.
        let window = [0.0; 168];
        assert_eq!(magnitude(&window, 42.0), Some(42.0));
    }

    #[test]
    fn magnitude_sign_tracks_direction() {
        let window: Vec<f64> = (0..100).map(|i| f64::from(i % 7)).collect();
        assert!(magnitude(&window, 100.0).unwrap() > 0.0);
        assert!(magnitude(&window, -100.0).unwrap() < 0.0);
    }

    #[test]
    fn magnitude_empty_window_is_none() {
        assert_eq!(magnitude(&[], 1.0), None);
    }

    proptest! {
        #[test]
        fn prop_mad_nonnegative(data in prop::collection::vec(-1e5f64..1e5, 1..200)) {
            prop_assert!(mad(&data).unwrap() >= 0.0);
        }

        #[test]
        fn prop_mad_translation_invariant(data in prop::collection::vec(-1e3f64..1e3, 1..100), shift in -1e3f64..1e3) {
            let m1 = mad(&data).unwrap();
            let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
            let m2 = mad(&shifted).unwrap();
            prop_assert!((m1 - m2).abs() < 1e-6);
        }

        #[test]
        fn prop_magnitude_monotone_in_x(data in prop::collection::vec(-1e3f64..1e3, 2..100), x1 in -1e3f64..1e3, x2 in -1e3f64..1e3) {
            let (a, b) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
            let ma = magnitude(&data, a).unwrap();
            let mb = magnitude(&data, b).unwrap();
            prop_assert!(ma <= mb + 1e-12);
        }
    }
}
