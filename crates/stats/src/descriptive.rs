//! Non-robust descriptive statistics (mean, variance, skewness).
//!
//! These exist mainly as the *comparison point* for the paper's robust
//! estimators: Fig. 2 contrasts the raw differential-RTT standard deviation
//! (σ = 12.2) with its mean (µ = 4.8); Fig. 3b shows the mean is not
//! normally distributed in the presence of outliers. [`Summary`] uses
//! Welford's online algorithm, so it doubles as the accumulator for
//! streaming use.

/// Online mean/variance/min/max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Empty accumulator.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Accumulate over a slice.
    pub fn from_slice(data: &[f64]) -> Self {
        let mut s = Summary::new();
        for &x in data {
            s.push(x);
        }
        s
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let term1 = delta * delta_n * (n - 1.0);
        self.mean += delta_n;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * nb / n;
        let m2 = self.m2 + other.m2 + delta * delta * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta.powi(3) * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 when fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (Bessel-corrected) variance.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Skewness (0 when undefined).
    pub fn skewness(&self) -> f64 {
        if self.n < 3 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.n as f64;
        (n.sqrt() * self.m3) / self.m2.powf(1.5)
    }

    /// Minimum (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum (`−inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_and_single() {
        let e = Summary::new();
        assert_eq!(e.count(), 0);
        assert_eq!(e.variance(), 0.0);
        let mut s = Summary::new();
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn skewness_sign() {
        // Right-skewed sample.
        let right = Summary::from_slice(&[1.0, 1.0, 1.0, 1.0, 10.0]);
        assert!(right.skewness() > 0.0);
        let left = Summary::from_slice(&[10.0, 10.0, 10.0, 10.0, 1.0]);
        assert!(left.skewness() < 0.0);
        let sym = Summary::from_slice(&[1.0, 2.0, 3.0]);
        assert!(sym.skewness().abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.7 - 20.0).collect();
        let full = Summary::from_slice(&data);
        let mut a = Summary::from_slice(&data[..37]);
        let b = Summary::from_slice(&data[37..]);
        a.merge(&b);
        assert!((a.mean() - full.mean()).abs() < 1e-9);
        assert!((a.variance() - full.variance()).abs() < 1e-9);
        assert_eq!(a.count(), full.count());
        assert_eq!(a.min(), full.min());
        assert_eq!(a.max(), full.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_slice(&[1.0, 2.0]);
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    proptest! {
        #[test]
        fn prop_mean_in_range(data in prop::collection::vec(-1e5f64..1e5, 1..200)) {
            let s = Summary::from_slice(&data);
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }

        #[test]
        fn prop_variance_nonnegative(data in prop::collection::vec(-1e4f64..1e4, 1..200)) {
            prop_assert!(Summary::from_slice(&data).variance() >= -1e-9);
        }

        #[test]
        fn prop_merge_matches_sequential(a in prop::collection::vec(-1e3f64..1e3, 0..60), b in prop::collection::vec(-1e3f64..1e3, 0..60)) {
            let mut merged = Summary::from_slice(&a);
            merged.merge(&Summary::from_slice(&b));
            let mut all = a.clone();
            all.extend_from_slice(&b);
            let seq = Summary::from_slice(&all);
            prop_assert_eq!(merged.count(), seq.count());
            if seq.count() > 0 {
                prop_assert!((merged.mean() - seq.mean()).abs() < 1e-6);
                prop_assert!((merged.variance() - seq.variance()).abs() < 1e-4);
            }
        }
    }
}
