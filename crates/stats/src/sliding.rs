//! Sliding-window robust statistics.
//!
//! The magnitude metric (Eq. 10) uses a *one-week sliding* median and MAD.
//! [`SlidingRobust`] maintains a bounded window of the most recent values
//! and serves median/MAD/magnitude queries against it.
//!
//! The window stays small (168 hourly bins for one week), so recomputing
//! order statistics per query — O(w log w) — is both simple and fast; an
//! indexed multiset would only pay off for windows orders of magnitude
//! larger. A property test pins this implementation to the naive definition.

use crate::mad::{magnitude, MAD_TO_SIGMA};
use crate::quantile::median;
use std::collections::VecDeque;

/// Fixed-capacity sliding window with robust statistics.
#[derive(Debug, Clone)]
pub struct SlidingRobust {
    window: VecDeque<f64>,
    capacity: usize,
}

impl SlidingRobust {
    /// Create a window holding at most `capacity` values.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        SlidingRobust {
            window: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Rebuild a window from its capacity and contents (oldest first) —
    /// the snapshot/restore constructor. Values beyond `capacity` evict
    /// from the front, exactly as live pushes would have.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn from_values<I>(capacity: usize, values: I) -> Self
    where
        I: IntoIterator<Item = f64>,
    {
        let mut s = SlidingRobust::new(capacity);
        for x in values {
            s.push(x);
        }
        s
    }

    /// The window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of values currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Whether the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.window.len() == self.capacity
    }

    /// Push a value, evicting the oldest when full.
    pub fn push(&mut self, x: f64) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(x);
    }

    /// Current window contents (oldest first).
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.window.iter().copied()
    }

    /// Median of the window.
    pub fn median(&self) -> Option<f64> {
        let v: Vec<f64> = self.window.iter().copied().collect();
        median(&v)
    }

    /// MAD of the window.
    pub fn mad(&self) -> Option<f64> {
        let v: Vec<f64> = self.window.iter().copied().collect();
        crate::mad::mad(&v)
    }

    /// Magnitude of `x` against the current window (Eq. 10).
    ///
    /// Scores `x` against the existing window *without* including `x`,
    /// matching the online use: score this hour's severity against the
    /// previous week, then [`push`](Self::push) it.
    pub fn magnitude(&self, x: f64) -> Option<f64> {
        let v: Vec<f64> = self.window.iter().copied().collect();
        magnitude(&v, x)
    }

    /// Score and then absorb a value: the common online step.
    pub fn score_and_push(&mut self, x: f64) -> Option<f64> {
        let m = self.magnitude(x);
        self.push(x);
        // First value has no history: report neutral 0 rather than None so
        // time series stay aligned.
        Some(m.unwrap_or(0.0))
    }

    /// The denominator of Eq. 10 for the current window.
    pub fn scale(&self) -> Option<f64> {
        Some(1.0 + MAD_TO_SIGMA * self.mad()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eviction_keeps_capacity() {
        let mut s = SlidingRobust::new(3);
        for i in 0..10 {
            s.push(f64::from(i));
        }
        assert_eq!(s.len(), 3);
        let v: Vec<f64> = s.values().collect();
        assert_eq!(v, vec![7.0, 8.0, 9.0]);
        assert!(s.is_full());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        SlidingRobust::new(0);
    }

    #[test]
    fn median_and_mad_follow_window() {
        let mut s = SlidingRobust::new(5);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.push(x);
        }
        assert_eq!(s.median(), Some(3.0));
        assert_eq!(s.mad(), Some(1.0));
        // Slide the window: [3,4,5,6,7].
        s.push(6.0);
        s.push(7.0);
        assert_eq!(s.median(), Some(5.0));
    }

    #[test]
    fn empty_window_returns_none() {
        let s = SlidingRobust::new(4);
        assert_eq!(s.median(), None);
        assert_eq!(s.mad(), None);
        assert_eq!(s.magnitude(1.0), None);
    }

    #[test]
    fn score_and_push_first_value_is_zero() {
        let mut s = SlidingRobust::new(4);
        assert_eq!(s.score_and_push(10.0), Some(0.0));
        assert_eq!(s.len(), 1);
        // Second identical value scores 0 too (x == median, MAD == 0).
        assert_eq!(s.score_and_push(10.0), Some(0.0));
    }

    #[test]
    fn spike_scores_high_then_decays_into_reference() {
        let mut s = SlidingRobust::new(168);
        for _ in 0..168 {
            s.push(1.0);
        }
        let spike = s.score_and_push(100.0).unwrap();
        assert!(spike > 50.0, "spike magnitude {spike}");
        // After the spike enters the window the next normal hour is ~0.
        let normal = s.score_and_push(1.0).unwrap();
        assert!(normal.abs() < 1.0, "normal magnitude {normal}");
    }

    proptest! {
        #[test]
        fn prop_matches_naive_recompute(xs in prop::collection::vec(-1e4f64..1e4, 1..300), cap in 1usize..50) {
            let mut s = SlidingRobust::new(cap);
            let mut naive: Vec<f64> = Vec::new();
            for &x in &xs {
                s.push(x);
                naive.push(x);
                if naive.len() > cap {
                    naive.remove(0);
                }
                let expect = crate::quantile::median(&naive).unwrap();
                prop_assert!((s.median().unwrap() - expect).abs() < 1e-9);
                let expect_mad = crate::mad::mad(&naive).unwrap();
                prop_assert!((s.mad().unwrap() - expect_mad).abs() < 1e-9);
            }
        }
    }
}
