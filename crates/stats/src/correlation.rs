//! Pearson product-moment correlation.
//!
//! The forwarding-anomaly detector measures the linear dependence between a
//! router's current forwarding pattern `F` and its learned reference `F̄`
//! (§5.2.1). "Positive values mean that the forwarding patterns expressed by
//! F and F̄ are compatible, while negative values indicate opposite patterns
//! hence forwarding anomalies."

/// Pearson correlation coefficient of two equal-length slices.
///
/// Returns `None` when:
/// * the slices differ in length or have fewer than 2 elements;
/// * either series has zero variance (correlation undefined).
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    // Clamp to counter floating-point drift just outside [-1, 1].
    Some((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z: Vec<f64> = x.iter().map(|v| -0.5 * v).collect();
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_figure4_style_anomaly_is_anticorrelated() {
        // Fig. 4 scenario: reference F̄R = [10, 100, 5] over hops (A, B, Z);
        // in the anomalous bin traffic that usually went to B shifts to a
        // new hop C. Aligned over the union (A, B, C, Z) the patterns are
        // opposite where it matters, so ρ falls below the paper's τ = −0.25
        // (the paper's own figure yields ρ = −0.6).
        let reference = [10.0, 100.0, 0.0, 5.0];
        let pattern = [10.0, 0.0, 50.0, 15.0];
        let rho = pearson(&pattern, &reference).unwrap();
        assert!(rho < -0.25, "rho = {rho} not below τ");
        assert!(rho > -1.0);
    }

    #[test]
    fn zero_variance_is_none() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(pearson(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]), None);
    }

    #[test]
    fn length_mismatch_is_none() {
        assert_eq!(pearson(&[1.0, 2.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(pearson(&[1.0], &[1.0]), None);
        assert_eq!(pearson(&[], &[]), None);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        // Alternating pattern orthogonal to a linear ramp.
        let x: Vec<f64> = (0..100).map(f64::from).collect();
        let y: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let rho = pearson(&x, &y).unwrap();
        assert!(rho.abs() < 0.1, "rho = {rho}");
    }

    proptest! {
        #[test]
        fn prop_in_range(x in prop::collection::vec(-1e4f64..1e4, 2..100), y in prop::collection::vec(-1e4f64..1e4, 2..100)) {
            let n = x.len().min(y.len());
            if let Some(r) = pearson(&x[..n], &y[..n]) {
                prop_assert!((-1.0..=1.0).contains(&r));
            }
        }

        #[test]
        fn prop_symmetric(x in prop::collection::vec(-1e3f64..1e3, 2..50), y in prop::collection::vec(-1e3f64..1e3, 2..50)) {
            let n = x.len().min(y.len());
            let a = pearson(&x[..n], &y[..n]);
            let b = pearson(&y[..n], &x[..n]);
            match (a, b) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                (None, None) => {},
                _ => prop_assert!(false, "asymmetric None"),
            }
        }

        #[test]
        fn prop_self_correlation_is_one(x in prop::collection::vec(-1e3f64..1e3, 2..50)) {
            if let Some(r) = pearson(&x, &x) {
                prop_assert!((r - 1.0).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_affine_invariant(x in prop::collection::vec(-1e2f64..1e2, 3..40), a in 0.1f64..10.0, b in -5.0f64..5.0) {
            let y: Vec<f64> = x.iter().map(|v| a * v + b).collect();
            if let Some(r) = pearson(&x, &y) {
                prop_assert!((r - 1.0).abs() < 1e-6);
            }
        }
    }
}
