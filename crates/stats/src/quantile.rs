//! Medians, quantiles, and order statistics.
//!
//! The delay-change detector's estimator is the *median* differential RTT
//! (§4.2.2): the paper replaces the arithmetic mean of the classical CLT
//! with the median, which "is much more robust to outlying values and
//! requires less samples to converge to the normal distribution".
//!
//! Two access patterns are provided:
//! * sorting-based [`quantile_sorted`]/[`median_sorted`] when the caller
//!   already needs the full order (Wilson CIs index into the sorted array);
//! * an in-place quickselect [`select_kth`] for one-off order statistics in
//!   O(n) expected time.

/// Select (in place) the `k`-th smallest element (0-based) of `data`.
///
/// Expected O(n) quickselect with median-of-three pivoting. After the call,
/// `data[k]` holds the k-th order statistic and the slice is partitioned
/// around it.
///
/// # Panics
/// Panics if `data` is empty or `k >= data.len()`.
pub fn select_kth(data: &mut [f64], k: usize) -> f64 {
    assert!(!data.is_empty(), "select_kth on empty slice");
    assert!(k < data.len(), "k {k} out of bounds {}", data.len());
    let (mut lo, mut hi) = (0usize, data.len() - 1);
    // Classic Hoare quickselect: narrow [lo, hi] around k until it pins a
    // single element. The Hoare partition only guarantees a split point —
    // not that data[p] is final — so there is no early-exit on k == p.
    while lo < hi {
        let pivot = median_of_three(data, lo, hi);
        let p = partition(data, lo, hi, pivot);
        if k <= p {
            hi = p;
        } else {
            lo = p + 1;
        }
    }
    data[k]
}

/// Select (in place) **several** order statistics in one pass.
///
/// `ks` must be sorted ascending, deduplicated, and in bounds. After the
/// call `data[k]` holds the `k`-th order statistic for every `k` in
/// `ks`. Each Hoare partition serves every rank at once: the sorted rank
/// list splits at the partition point and each side is resolved inside
/// the sub-range that partition already produced — the partition work a
/// rank-by-rank [`select_kth`] sequence would redo is shared instead.
/// With the same pivot rule ([`median_of_three`]) and partition scheme
/// as [`select_kth`], every pinned value is the exact order statistic a
/// full sort would place there.
///
/// # Panics
/// Panics if `ks` is non-empty and `data` is empty, or any rank is out
/// of bounds.
pub fn select_multi(data: &mut [f64], ks: &[usize]) {
    if ks.is_empty() {
        return;
    }
    assert!(!data.is_empty(), "select_multi on empty slice");
    debug_assert!(ks.windows(2).all(|w| w[0] < w[1]), "ranks must ascend");
    assert!(
        *ks.last().expect("non-empty") < data.len(),
        "rank {} out of bounds {}",
        ks.last().expect("non-empty"),
        data.len()
    );
    select_multi_in(data, 0, data.len() - 1, ks);
}

/// The recursive core of [`select_multi`]: resolve `ks` within
/// `data[lo..=hi]`. Iterates while the ranks stay on one side of the
/// partition (exactly [`select_kth`]'s narrowing loop); recurses only
/// when they straddle it, so the depth is bounded by `ks.len()`.
fn select_multi_in(data: &mut [f64], mut lo: usize, mut hi: usize, mut ks: &[usize]) {
    while !ks.is_empty() && lo < hi {
        let pivot = median_of_three(data, lo, hi);
        let p = partition(data, lo, hi, pivot);
        let split = ks.partition_point(|&k| k <= p);
        let (left, right) = ks.split_at(split);
        if left.is_empty() {
            lo = p + 1;
            ks = right;
        } else if right.is_empty() {
            hi = p;
            ks = left;
        } else {
            select_multi_in(data, lo, p, left);
            lo = p + 1;
            ks = right;
        }
    }
}

fn median_of_three(data: &mut [f64], lo: usize, hi: usize) -> f64 {
    let mid = lo + (hi - lo) / 2;
    // Order data[lo] <= data[mid] <= data[hi].
    if data[mid] < data[lo] {
        data.swap(mid, lo);
    }
    if data[hi] < data[lo] {
        data.swap(hi, lo);
    }
    if data[hi] < data[mid] {
        data.swap(hi, mid);
    }
    data[mid]
}

fn partition(data: &mut [f64], lo: usize, hi: usize, pivot: f64) -> usize {
    let mut i = lo;
    let mut j = hi;
    loop {
        while data[i] < pivot {
            i += 1;
        }
        while data[j] > pivot {
            j -= 1;
        }
        if i >= j {
            return j;
        }
        data.swap(i, j);
        i += 1;
        if j == 0 {
            return 0;
        }
        j -= 1;
    }
}

/// Median of a slice (copies and selects; input order preserved).
///
/// Even-length inputs return the mean of the two central order statistics.
/// Returns `None` on an empty slice. Non-finite values must be filtered by
/// the caller; they would poison comparisons.
pub fn median(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let mut buf = data.to_vec();
    let n = buf.len();
    if n % 2 == 1 {
        Some(select_kth(&mut buf, n / 2))
    } else {
        let hi = select_kth(&mut buf, n / 2);
        // After selecting n/2, the max of the lower partition is the other
        // central element.
        let lo = buf[..n / 2]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        Some((lo + hi) / 2.0)
    }
}

/// Median of an already-sorted slice.
pub fn median_sorted(sorted: &[f64]) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let n = sorted.len();
    if n % 2 == 1 {
        Some(sorted[n / 2])
    } else {
        Some((sorted[n / 2 - 1] + sorted[n / 2]) / 2.0)
    }
}

/// Linear-interpolation quantile (R-7 / NumPy `linear`) of sorted data,
/// `q ∈ [0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let n = sorted.len();
    if n == 1 {
        return Some(sorted[0]);
    }
    let pos = q * (n - 1) as f64;
    let i = pos.floor() as usize;
    let frac = pos - i as f64;
    if i + 1 < n {
        Some(sorted[i] * (1.0 - frac) + sorted[i + 1] * frac)
    } else {
        Some(sorted[n - 1])
    }
}

/// Quantile of unsorted data (sorts a copy).
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    let mut buf = data.to_vec();
    buf.sort_by(|a, b| a.partial_cmp(b).expect("non-finite value in quantile"));
    quantile_sorted(&buf, q)
}

/// Sort a copy of the data (ascending), for callers that need repeated
/// order-statistic access.
pub fn sorted_copy(data: &[f64]) -> Vec<f64> {
    let mut buf = data.to_vec();
    buf.sort_by(|a, b| a.partial_cmp(b).expect("non-finite value in sorted_copy"));
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[5.0]), Some(5.0));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn median_with_duplicates() {
        assert_eq!(median(&[1.0, 1.0, 1.0, 9.0]), Some(1.0));
        assert_eq!(median(&[2.0, 2.0]), Some(2.0));
    }

    #[test]
    fn median_is_outlier_robust() {
        // The exact property the paper relies on: one huge outlier moves the
        // mean but not the median.
        let mut xs: Vec<f64> = (0..101).map(f64::from).collect();
        let clean = median(&xs).unwrap();
        xs[0] = 1e9;
        let dirty = median(&xs).unwrap();
        assert!((dirty - clean).abs() <= 1.0);
    }

    #[test]
    fn select_kth_matches_sort() {
        let data = [9.0, -3.0, 7.0, 0.5, 7.0, 2.0, 11.0, -8.0];
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (k, &want) in sorted.iter().enumerate() {
            let mut buf = data.to_vec();
            assert_eq!(select_kth(&mut buf, k), want, "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn select_on_empty_panics() {
        select_kth(&mut [], 0);
    }

    #[test]
    fn select_multi_pins_every_rank() {
        let data = [9.0, -3.0, 7.0, 0.5, 7.0, 2.0, 11.0, -8.0, 4.0];
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut buf = data.to_vec();
        let ks = [0usize, 2, 4, 8];
        select_multi(&mut buf, &ks);
        for &k in &ks {
            assert_eq!(buf[k], sorted[k], "k={k}");
        }
        // And the buffer is still a permutation of the input.
        let mut perm = buf;
        perm.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(perm, sorted);
    }

    #[test]
    fn select_multi_empty_ranks_is_noop() {
        let mut buf = vec![3.0, 1.0, 2.0];
        select_multi(&mut buf, &[]);
        assert_eq!(buf, vec![3.0, 1.0, 2.0]);
        select_multi(&mut [], &[]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn select_multi_rank_out_of_bounds_panics() {
        select_multi(&mut [1.0, 2.0], &[2]);
    }

    #[test]
    fn quantile_interpolation() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), Some(1.0));
        assert_eq!(quantile_sorted(&sorted, 1.0), Some(4.0));
        assert_eq!(quantile_sorted(&sorted, 0.5), Some(2.5));
        assert!((quantile_sorted(&sorted, 0.25).unwrap() - 1.75).abs() < 1e-12);
        assert_eq!(quantile_sorted(&sorted, 1.5), None);
        assert_eq!(quantile_sorted(&[], 0.5), None);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[7.0], 0.3), Some(7.0));
    }

    #[test]
    fn median_agrees_with_quantile_half() {
        let data = [5.0, 1.0, 4.0, 2.0, 3.0, 6.0];
        assert_eq!(median(&data), quantile(&data, 0.5));
    }

    proptest! {
        #[test]
        fn prop_median_between_min_max(data in prop::collection::vec(-1e6f64..1e6, 1..200)) {
            let m = median(&data).unwrap();
            let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo && m <= hi);
        }

        #[test]
        fn prop_median_matches_naive(data in prop::collection::vec(-1e6f64..1e6, 1..100)) {
            let mut sorted = data.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let naive = median_sorted(&sorted).unwrap();
            prop_assert!((median(&data).unwrap() - naive).abs() < 1e-9);
        }

        #[test]
        fn prop_select_kth_matches_sort(data in prop::collection::vec(-1e3f64..1e3, 1..80), k_frac in 0.0f64..1.0) {
            let k = ((data.len() - 1) as f64 * k_frac) as usize;
            let mut sorted = data.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut buf = data.clone();
            prop_assert_eq!(select_kth(&mut buf, k), sorted[k]);
        }

        #[test]
        fn prop_select_multi_matches_sort(
            data in prop::collection::vec(-1e3f64..1e3, 1..80),
            fracs in prop::collection::vec(0.0f64..1.0, 1..5),
        ) {
            let mut ks: Vec<usize> = fracs
                .iter()
                .map(|f| ((data.len() - 1) as f64 * f) as usize)
                .collect();
            ks.sort_unstable();
            ks.dedup();
            let mut sorted = data.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut buf = data.clone();
            select_multi(&mut buf, &ks);
            for &k in &ks {
                prop_assert_eq!(buf[k], sorted[k]);
            }
        }

        #[test]
        fn prop_quantile_monotone(data in prop::collection::vec(-1e4f64..1e4, 2..100), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
            let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            let a = quantile(&data, qa).unwrap();
            let b = quantile(&data, qb).unwrap();
            prop_assert!(a <= b + 1e-12);
        }

        #[test]
        fn prop_median_translation_equivariant(data in prop::collection::vec(-1e4f64..1e4, 1..60), shift in -1e3f64..1e3) {
            let m1 = median(&data).unwrap();
            let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
            let m2 = median(&shifted).unwrap();
            prop_assert!((m2 - (m1 + shift)).abs() < 1e-6);
        }
    }
}
