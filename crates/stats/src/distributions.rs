//! Random-variate samplers for the network simulator.
//!
//! `rand_distr` is not in the allowed dependency set, so the distributions
//! the delay/loss models need are implemented here:
//!
//! * [`Normal`] — Marsaglia polar method;
//! * [`LogNormal`] — exp of a normal; models the body of RTT noise
//!   (RTT distributions are right-skewed, Fontugne et al. INFOCOM'15);
//! * [`Exponential`] — inversion; inter-event times;
//! * [`Pareto`] — inversion; heavy-tailed delay spikes and the rare gross
//!   outliers that break mean-based detection (Fig. 3b);
//! * [`Bernoulli`] helpers live on `SplitMix64` directly.
//!
//! Each sampler is validated against its analytic moments in the tests.

use crate::rng::SplitMix64;

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Create a normal distribution.
    ///
    /// # Panics
    /// Panics if `std_dev < 0` or parameters are non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(mean.is_finite() && std_dev.is_finite(), "non-finite params");
        assert!(std_dev >= 0.0, "negative std dev");
        Normal { mean, std_dev }
    }

    /// Draw one sample (Marsaglia polar method).
    pub fn sample(&self, rng: &mut SplitMix64) -> f64 {
        if self.std_dev == 0.0 {
            return self.mean;
        }
        loop {
            let u = 2.0 * rng.next_f64() - 1.0;
            let v = 2.0 * rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std_dev * u * factor;
            }
        }
    }
}

/// Log-normal distribution parameterized by the underlying normal's µ and σ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Create from the location (µ) and scale (σ) of `ln X`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        LogNormal {
            norm: Normal::new(mu, sigma),
        }
    }

    /// Create from the desired *median* of X and σ of `ln X`.
    ///
    /// Convenient for delay modelling: `median` is the typical extra delay,
    /// σ controls the tail weight.
    pub fn from_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "log-normal median must be positive");
        LogNormal::new(median.ln(), sigma)
    }

    /// Draw one sample.
    pub fn sample(&self, rng: &mut SplitMix64) -> f64 {
        self.norm.sample(rng).exp()
    }

    /// Analytic mean `exp(µ + σ²/2)`.
    pub fn mean(&self) -> f64 {
        (self.norm.mean + self.norm.std_dev * self.norm.std_dev / 2.0).exp()
    }
}

/// Exponential distribution with rate λ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Create with rate `lambda` (> 0).
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite(), "lambda must be > 0");
        Exponential { lambda }
    }

    /// Create from the mean (1/λ).
    pub fn from_mean(mean: f64) -> Self {
        Exponential::new(1.0 / mean)
    }

    /// Draw one sample by inversion.
    pub fn sample(&self, rng: &mut SplitMix64) -> f64 {
        // 1 − U avoids ln(0).
        -(1.0 - rng.next_f64()).ln() / self.lambda
    }
}

/// Pareto (type I) distribution: `P(X > x) = (x_m / x)^α` for `x ≥ x_m`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Create with scale `x_m` (> 0) and shape α (> 0).
    pub fn new(scale: f64, shape: f64) -> Self {
        assert!(scale > 0.0 && shape > 0.0, "pareto params must be > 0");
        Pareto { scale, shape }
    }

    /// Draw one sample by inversion.
    pub fn sample(&self, rng: &mut SplitMix64) -> f64 {
        let u = 1.0 - rng.next_f64(); // in (0, 1]
        self.scale / u.powf(1.0 / self.shape)
    }

    /// Analytic mean (∞ when α ≤ 1, returned as `f64::INFINITY`).
    pub fn mean(&self) -> f64 {
        if self.shape <= 1.0 {
            f64::INFINITY
        } else {
            self.shape * self.scale / (self.shape - 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::Summary;

    fn sample_n(n: usize, seed: u64, mut f: impl FnMut(&mut SplitMix64) -> f64) -> Summary {
        let mut rng = SplitMix64::new(seed);
        let mut s = Summary::new();
        for _ in 0..n {
            s.push(f(&mut rng));
        }
        s
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(5.0, 2.0);
        let s = sample_n(200_000, 1, |r| d.sample(r));
        assert!((s.mean() - 5.0).abs() < 0.02, "mean {}", s.mean());
        assert!((s.std_dev() - 2.0).abs() < 0.02, "sd {}", s.std_dev());
        assert!(s.skewness().abs() < 0.05, "skew {}", s.skewness());
    }

    #[test]
    fn normal_zero_sigma_is_constant() {
        let d = Normal::new(3.0, 0.0);
        let mut rng = SplitMix64::new(2);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.0);
        }
    }

    #[test]
    #[should_panic(expected = "negative std dev")]
    fn normal_rejects_negative_sigma() {
        Normal::new(0.0, -1.0);
    }

    #[test]
    fn lognormal_median_and_mean() {
        let d = LogNormal::from_median(2.0, 0.5);
        let mut rng = SplitMix64::new(3);
        let mut xs: Vec<f64> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[xs.len() / 2];
        assert!((med - 2.0).abs() < 0.05, "median {med}");
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            (mean - d.mean()).abs() < 0.05,
            "mean {mean} vs {}",
            d.mean()
        );
        assert!(xs[0] > 0.0, "log-normal must be positive");
    }

    #[test]
    fn lognormal_is_right_skewed() {
        let d = LogNormal::from_median(1.0, 1.0);
        let s = sample_n(50_000, 4, |r| d.sample(r));
        assert!(s.skewness() > 1.0, "skew {}", s.skewness());
    }

    #[test]
    fn exponential_moments() {
        let d = Exponential::from_mean(4.0);
        let s = sample_n(200_000, 5, |r| d.sample(r));
        assert!((s.mean() - 4.0).abs() < 0.05, "mean {}", s.mean());
        // Var = mean² for exponential.
        assert!((s.variance() - 16.0).abs() < 0.5, "var {}", s.variance());
        assert!(s.min() >= 0.0);
    }

    #[test]
    fn pareto_tail_and_mean() {
        let d = Pareto::new(1.0, 2.5);
        let s = sample_n(300_000, 6, |r| d.sample(r));
        assert!(s.min() >= 1.0);
        assert!(
            (s.mean() - d.mean()).abs() < 0.05,
            "mean {} vs {}",
            s.mean(),
            d.mean()
        );
        // Tail check: P(X > 4) = 4^-2.5 ≈ 0.03125.
        let mut rng = SplitMix64::new(7);
        let n = 200_000;
        let tail = (0..n).filter(|_| d.sample(&mut rng) > 4.0).count() as f64 / n as f64;
        assert!((tail - 0.03125).abs() < 0.003, "tail {tail}");
    }

    #[test]
    fn pareto_infinite_mean_flagged() {
        assert!(Pareto::new(1.0, 0.9).mean().is_infinite());
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let d = Normal::new(0.0, 1.0);
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for _ in 0..50 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
