//! Simulation time and analysis bins.
//!
//! The paper bins traceroutes into fixed windows ("the system collects all
//! traceroutes initiated in a 1-hour time bin", §4.2). [`SimTime`] is the
//! scenario clock in seconds since an arbitrary epoch, and [`BinId`] is the
//! index of the analysis window containing a given instant.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Seconds since the scenario epoch.
///
/// Wall-clock simulation time. Scenarios typically set their epoch to the
/// start of the studied period (e.g. 2015-11-26 00:00 UTC for the root
/// server DDoS case study) and express event times as offsets.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The scenario epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole hours since the epoch.
    pub fn from_hours(h: u64) -> Self {
        SimTime(h * 3600)
    }

    /// Construct from whole minutes since the epoch.
    pub fn from_mins(m: u64) -> Self {
        SimTime(m * 60)
    }

    /// Construct from days since the epoch.
    pub fn from_days(d: u64) -> Self {
        SimTime(d * 86_400)
    }

    /// Seconds since epoch.
    pub fn secs(self) -> u64 {
        self.0
    }

    /// Fractional hours since the epoch.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    /// The analysis bin containing this instant for bin length `bin_secs`.
    pub fn bin(self, bin_secs: u64) -> BinId {
        assert!(bin_secs > 0, "bin length must be positive");
        BinId(self.0 / bin_secs)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.0 / 86_400;
        let h = (self.0 % 86_400) / 3600;
        let m = (self.0 % 3600) / 60;
        let s = self.0 % 60;
        write!(f, "d{d} {h:02}:{m:02}:{s:02}")
    }
}

/// Index of a fixed-length analysis window.
///
/// With the paper's default 1-hour bins, `BinId(n)` covers
/// `[n*3600, (n+1)*3600)` seconds since the epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct BinId(pub u64);

impl BinId {
    /// Start of the bin for bin length `bin_secs`.
    pub fn start(self, bin_secs: u64) -> SimTime {
        SimTime(self.0 * bin_secs)
    }

    /// Exclusive end of the bin for bin length `bin_secs`.
    pub fn end(self, bin_secs: u64) -> SimTime {
        SimTime((self.0 + 1) * bin_secs)
    }

    /// The next bin.
    pub fn next(self) -> BinId {
        BinId(self.0 + 1)
    }

    /// Index as `u64`.
    pub fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BinId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bin#{}", self.0)
    }
}

/// The paper's default analysis bin length (1 hour, §4.2).
pub const DEFAULT_BIN_SECS: u64 = 3600;

/// Length of the sliding window used for the magnitude metric (1 week, §6).
pub const MAGNITUDE_WINDOW_BINS: usize = 7 * 24;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_hours(2), SimTime(7200));
        assert_eq!(SimTime::from_mins(90), SimTime(5400));
        assert_eq!(SimTime::from_days(1), SimTime(86_400));
    }

    #[test]
    fn binning() {
        assert_eq!(SimTime(0).bin(3600), BinId(0));
        assert_eq!(SimTime(3599).bin(3600), BinId(0));
        assert_eq!(SimTime(3600).bin(3600), BinId(1));
        assert_eq!(BinId(2).start(3600), SimTime(7200));
        assert_eq!(BinId(2).end(3600), SimTime(10_800));
        assert_eq!(BinId(2).next(), BinId(3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bin_length_panics() {
        SimTime(0).bin(0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_hours(1) + SimTime::from_mins(30);
        assert_eq!(t, SimTime(5400));
        assert_eq!(t - SimTime::from_mins(30), SimTime(3600));
        assert_eq!(SimTime(5).saturating_sub(SimTime(10)), SimTime::ZERO);
        let mut u = SimTime(1);
        u += SimTime(2);
        assert_eq!(u, SimTime(3));
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime(90_061).to_string(), "d1 01:01:01");
        assert_eq!(BinId(5).to_string(), "bin#5");
    }

    #[test]
    fn hours_f64() {
        assert!((SimTime(5400).as_hours_f64() - 1.5).abs() < 1e-12);
    }
}
