//! Network primitives: autonomous system numbers and IPv4 prefixes.
//!
//! IP addresses are plain [`std::net::Ipv4Addr`]; this module adds the
//! pieces the standard library lacks: a typed ASN and a CIDR prefix with
//! containment tests, used throughout for IP-to-AS mapping (§6 of the
//! paper, "longest prefix match").

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An Autonomous System Number.
///
/// Plain 32-bit ASN (RFC 6793). Displayed as `AS<number>` as in the paper
/// ("AS25152, RIPE NCC K-Root Operations").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Asn(pub u32);

impl Asn {
    /// Reserved value used for unknown / unmapped addresses.
    pub const UNKNOWN: Asn = Asn(0);

    /// Whether this ASN is the reserved "unknown" value.
    pub fn is_unknown(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

/// An IPv4 CIDR prefix (`address/len`).
///
/// The address is stored in canonical (masked) form: constructing
/// `10.0.0.1/8` yields `10.0.0.0/8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Prefix {
    network: Ipv4Addr,
    len: u8,
}

impl Prefix {
    /// Create a prefix, masking the host bits of `addr`.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range");
        let bits = u32::from(addr) & Self::mask(len);
        Prefix {
            network: Ipv4Addr::from(bits),
            len,
        }
    }

    /// The all-encompassing default route `0.0.0.0/0`.
    pub fn default_route() -> Self {
        Prefix::new(Ipv4Addr::UNSPECIFIED, 0)
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// Network address (host bits zeroed).
    pub fn network(&self) -> Ipv4Addr {
        self.network
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Whether this is the zero-length default route.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of addresses covered by the prefix.
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// Does the prefix contain `addr`?
    pub fn contains(&self, addr: Ipv4Addr) -> bool {
        (u32::from(addr) & Self::mask(self.len)) == u32::from(self.network)
    }

    /// Does `self` fully cover `other` (i.e. `other` is a sub-prefix)?
    pub fn covers(&self, other: &Prefix) -> bool {
        other.len >= self.len && self.contains(other.network)
    }

    /// The `i`-th address inside the prefix (0 = network address).
    ///
    /// # Panics
    /// Panics if `i >= self.size()`.
    pub fn nth(&self, i: u64) -> Ipv4Addr {
        assert!(i < self.size(), "host index {i} out of prefix {self}");
        Ipv4Addr::from(u32::from(self.network) + i as u32)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network, self.len)
    }
}

/// Error parsing a [`Prefix`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrefixError(String);

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {}", self.0)
    }
}

impl std::error::Error for ParsePrefixError {}

impl FromStr for Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| ParsePrefixError(format!("missing '/' in {s:?}")))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|e| ParsePrefixError(format!("bad address in {s:?}: {e}")))?;
        let len: u8 = len
            .parse()
            .map_err(|e| ParsePrefixError(format!("bad length in {s:?}: {e}")))?;
        if len > 32 {
            return Err(ParsePrefixError(format!("length {len} > 32 in {s:?}")));
        }
        Ok(Prefix::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn asn_display() {
        assert_eq!(Asn(25152).to_string(), "AS25152");
        assert!(Asn::UNKNOWN.is_unknown());
        assert!(!Asn(3356).is_unknown());
    }

    #[test]
    fn prefix_canonicalizes_host_bits() {
        let p = Prefix::new(ip("10.1.2.3"), 8);
        assert_eq!(p.network(), ip("10.0.0.0"));
        assert_eq!(p.to_string(), "10.0.0.0/8");
    }

    #[test]
    fn prefix_contains() {
        let p = Prefix::new(ip("192.168.0.0"), 16);
        assert!(p.contains(ip("192.168.255.1")));
        assert!(!p.contains(ip("192.169.0.1")));
        assert!(Prefix::default_route().contains(ip("8.8.8.8")));
    }

    #[test]
    fn prefix_covers() {
        let p8 = Prefix::new(ip("10.0.0.0"), 8);
        let p16 = Prefix::new(ip("10.5.0.0"), 16);
        assert!(p8.covers(&p16));
        assert!(!p16.covers(&p8));
        assert!(p8.covers(&p8));
    }

    #[test]
    fn prefix_size_and_nth() {
        let p = Prefix::new(ip("10.0.0.0"), 30);
        assert_eq!(p.size(), 4);
        assert_eq!(p.nth(0), ip("10.0.0.0"));
        assert_eq!(p.nth(3), ip("10.0.0.3"));
    }

    #[test]
    #[should_panic(expected = "out of prefix")]
    fn prefix_nth_out_of_range_panics() {
        Prefix::new(ip("10.0.0.0"), 30).nth(4);
    }

    #[test]
    fn prefix_parse_round_trip() {
        let p: Prefix = "130.117.0.0/16".parse().unwrap();
        assert_eq!(p.to_string(), "130.117.0.0/16");
        assert!("1.2.3.4".parse::<Prefix>().is_err());
        assert!("1.2.3.4/33".parse::<Prefix>().is_err());
        assert!("x/8".parse::<Prefix>().is_err());
    }

    #[test]
    fn zero_length_prefix() {
        let p = Prefix::default_route();
        assert_eq!(p.size(), 1u64 << 32);
        assert!(p.is_empty());
    }
}
