//! Traceroute measurement records.
//!
//! The shape mirrors RIPE Atlas traceroute results: one record per
//! (probe, destination, start time), with one [`Hop`] per TTL and up to
//! three [`Reply`] values per hop (Atlas sends three packets per hop;
//! Appendix B of the paper relies on this "3 packets per hop" constant).
//!
//! Unresponsive hops — packets lost or routers not sending ICMP TTL-expired
//! — appear as replies with no source address and no RTT, rendered `*` by
//! classic traceroute.

use crate::addr::Asn;
use crate::link::IpLink;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Identifier of an Atlas-style probe (vantage point).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ProbeId(pub u32);

impl fmt::Display for ProbeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prb{}", self.0)
    }
}

/// Identifier of a measurement (a recurring probe→target schedule).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MeasurementId(pub u32);

impl fmt::Display for MeasurementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "msm{}", self.0)
    }
}

/// One response (or timeout) to one traceroute packet at a given TTL.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Reply {
    /// Responding router address; `None` for a timeout (`*`).
    pub from: Option<Ipv4Addr>,
    /// Round-trip time in milliseconds; `None` for a timeout.
    pub rtt_ms: Option<f64>,
}

impl Reply {
    /// A timeout (`*`) reply.
    pub const TIMEOUT: Reply = Reply {
        from: None,
        rtt_ms: None,
    };

    /// A normal reply.
    pub fn new(from: Ipv4Addr, rtt_ms: f64) -> Self {
        Reply {
            from: Some(from),
            rtt_ms: Some(rtt_ms),
        }
    }

    /// Whether the packet got any answer.
    pub fn is_responsive(&self) -> bool {
        self.from.is_some()
    }
}

/// All replies for one TTL value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Hop {
    /// TTL / hop number, starting at 1.
    pub ttl: u8,
    /// One entry per probe packet (normally three).
    pub replies: Vec<Reply>,
}

impl Hop {
    /// Build a hop from its TTL and replies.
    pub fn new(ttl: u8, replies: Vec<Reply>) -> Self {
        Hop { ttl, replies }
    }

    /// The distinct responding addresses at this hop.
    ///
    /// With Paris traceroute and a stable network this is a single address;
    /// multiple addresses indicate a routing change mid-measurement.
    pub fn responders(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        let mut seen = Vec::new();
        self.replies.iter().filter_map(move |r| {
            let a = r.from?;
            if seen.contains(&a) {
                None
            } else {
                seen.push(a);
                Some(a)
            }
        })
    }

    /// First responding address, if any.
    pub fn first_responder(&self) -> Option<Ipv4Addr> {
        self.replies.iter().find_map(|r| r.from)
    }

    /// RTT samples from replies sent by `addr`.
    pub fn rtts_from(&self, addr: Ipv4Addr) -> impl Iterator<Item = f64> + '_ {
        self.replies
            .iter()
            .filter(move |r| r.from == Some(addr))
            .filter_map(|r| r.rtt_ms)
    }

    /// Whether every packet at this hop timed out.
    pub fn is_unresponsive(&self) -> bool {
        self.replies.iter().all(|r| !r.is_responsive())
    }
}

/// One complete traceroute from a probe to a destination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracerouteRecord {
    /// Measurement this record belongs to.
    pub msm_id: MeasurementId,
    /// Originating probe.
    pub probe_id: ProbeId,
    /// AS hosting the probe (known for Atlas probes; used by the
    /// probe-diversity filter, §4.3).
    pub probe_asn: Asn,
    /// Traceroute target address. For anycast targets this is the service
    /// address, not the instance actually reached.
    pub dst: Ipv4Addr,
    /// When the traceroute was initiated.
    pub timestamp: SimTime,
    /// Paris traceroute flow identifier (kept constant within a record).
    pub paris_id: u16,
    /// Hops in TTL order.
    pub hops: Vec<Hop>,
    /// Whether the destination itself replied at the final hop.
    pub destination_reached: bool,
}

impl TracerouteRecord {
    /// Iterate over adjacent responsive IP pairs on the forward path,
    /// skipping unresponsive hops (the paper pairs *adjacent IP addresses
    /// observed in traceroutes*, §4.2 step 1 — a `*` hop breaks adjacency).
    ///
    /// Yields `(link, near_hop_index, far_hop_index)`.
    pub fn links(&self) -> Vec<(IpLink, usize, usize)> {
        let mut out = Vec::new();
        self.for_each_link(|link, near, far| out.push((link, near, far)));
        out
    }

    /// Visit each adjacent responsive IP pair without allocating — the
    /// per-bin sample engine calls this once per record on the hot path.
    /// Same semantics as [`Self::links`].
    pub fn for_each_link<F: FnMut(IpLink, usize, usize)>(&self, mut f: F) {
        let mut prev: Option<(Ipv4Addr, usize)> = None;
        for (i, hop) in self.hops.iter().enumerate() {
            match hop.first_responder() {
                Some(addr) => {
                    if let Some((paddr, pi)) = prev {
                        // Adjacent TTLs only: a silent hop in between means
                        // the two responders are not IP-adjacent.
                        if pi + 1 == i && paddr != addr {
                            f(IpLink::new(paddr, addr), pi, i);
                        }
                    }
                    prev = Some((addr, i));
                }
                None => {
                    prev = None;
                }
            }
        }
    }

    /// The last responsive hop index, if any.
    pub fn last_responsive_hop(&self) -> Option<usize> {
        self.hops.iter().rposition(|h| !h.is_unresponsive())
    }

    /// Total number of reply packets that timed out.
    pub fn lost_packets(&self) -> usize {
        self.hops
            .iter()
            .map(|h| h.replies.iter().filter(|r| !r.is_responsive()).count())
            .sum()
    }

    /// Total number of reply packets sent.
    pub fn total_packets(&self) -> usize {
        self.hops.iter().map(|h| h.replies.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn resp_hop(ttl: u8, addr: &str, rtt: f64) -> Hop {
        Hop::new(
            ttl,
            vec![
                Reply::new(ip(addr), rtt),
                Reply::new(ip(addr), rtt + 0.1),
                Reply::new(ip(addr), rtt + 0.2),
            ],
        )
    }

    fn star_hop(ttl: u8) -> Hop {
        Hop::new(ttl, vec![Reply::TIMEOUT; 3])
    }

    fn record(hops: Vec<Hop>) -> TracerouteRecord {
        TracerouteRecord {
            msm_id: MeasurementId(1),
            probe_id: ProbeId(7),
            probe_asn: Asn(64500),
            dst: ip("193.0.14.129"),
            timestamp: SimTime(42),
            paris_id: 3,
            hops,
            destination_reached: true,
        }
    }

    #[test]
    fn links_from_clean_path() {
        let r = record(vec![
            resp_hop(1, "10.0.0.1", 1.0),
            resp_hop(2, "10.0.1.1", 5.0),
            resp_hop(3, "10.0.2.1", 9.0),
        ]);
        let links = r.links();
        assert_eq!(links.len(), 2);
        assert_eq!(links[0].0, IpLink::new(ip("10.0.0.1"), ip("10.0.1.1")));
        assert_eq!(links[1].0, IpLink::new(ip("10.0.1.1"), ip("10.0.2.1")));
        assert_eq!((links[0].1, links[0].2), (0, 1));
    }

    #[test]
    fn star_hop_breaks_adjacency() {
        let r = record(vec![
            resp_hop(1, "10.0.0.1", 1.0),
            star_hop(2),
            resp_hop(3, "10.0.2.1", 9.0),
        ]);
        assert!(r.links().is_empty());
        assert_eq!(r.lost_packets(), 3);
        assert_eq!(r.total_packets(), 9);
    }

    #[test]
    fn repeated_address_is_not_a_link() {
        // TTL-expiring on the same router twice (e.g. routing loop) must not
        // produce a self-link.
        let r = record(vec![
            resp_hop(1, "10.0.0.1", 1.0),
            resp_hop(2, "10.0.0.1", 1.1),
        ]);
        assert!(r.links().is_empty());
    }

    #[test]
    fn responders_dedup() {
        let hop = Hop::new(
            1,
            vec![
                Reply::new(ip("1.1.1.1"), 3.0),
                Reply::new(ip("1.1.1.1"), 3.1),
                Reply::new(ip("2.2.2.2"), 4.0),
            ],
        );
        let rs: Vec<_> = hop.responders().collect();
        assert_eq!(rs, vec![ip("1.1.1.1"), ip("2.2.2.2")]);
        let rtts: Vec<_> = hop.rtts_from(ip("1.1.1.1")).collect();
        assert_eq!(rtts, vec![3.0, 3.1]);
    }

    #[test]
    fn last_responsive_hop() {
        let r = record(vec![
            resp_hop(1, "10.0.0.1", 1.0),
            resp_hop(2, "10.0.1.1", 2.0),
            star_hop(3),
        ]);
        assert_eq!(r.last_responsive_hop(), Some(1));
        let all_star = record(vec![star_hop(1), star_hop(2)]);
        assert_eq!(all_star.last_responsive_hop(), None);
    }

    #[test]
    fn partial_hop_is_responsive() {
        let hop = Hop::new(1, vec![Reply::new(ip("1.1.1.1"), 3.0), Reply::TIMEOUT]);
        assert!(!hop.is_unresponsive());
        assert_eq!(hop.first_responder(), Some(ip("1.1.1.1")));
    }
}
