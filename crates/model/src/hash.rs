//! Fast, deterministic hashing for hot-path maps.
//!
//! `std`'s default `RandomState` is DoS-resistant but slow for the small
//! fixed-width keys this workspace hashes millions of times per bin
//! (addresses, links, probe ids), and its per-process random seed makes
//! map iteration order vary run to run. [`FxHasher`] — the multiply-rotate
//! hash used by rustc (which is not in the allowed dependency set, so it
//! is implemented here) — is several times faster on such keys and fully
//! deterministic, which suits a pipeline whose output must be reproducible
//! from a single seed. Inputs are simulator-generated measurements, not
//! attacker-controlled strings, so hash-flooding resistance is not needed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc-style multiply-rotate hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    fn hash_of<T: std::hash::Hash + ?Sized>(v: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn maps_work_with_mixed_keys() {
        let mut m: FxHashMap<(std::net::Ipv4Addr, u32), usize> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((std::net::Ipv4Addr::from(i), i), i as usize);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&(std::net::Ipv4Addr::from(7u32), 7)], 7);
    }

    #[test]
    fn bytes_and_word_paths_differ_by_input() {
        // Sanity: distinct byte strings with shared prefixes separate.
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 4][..]));
        assert_ne!(hash_of(&[0u8; 7][..]), hash_of(&[0u8; 8][..]));
    }
}
