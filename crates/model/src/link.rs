//! IP-level links: ordered pairs of adjacent addresses on a forward path.
//!
//! Following the paper's terminology (§2): "a link refers to a pair of IP
//! addresses rather than a physical cable". The pair is **ordered** —
//! `(near, far)` as seen from the probe — because the differential RTT
//! Δ = RTT(far) − RTT(near) is directional.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// An ordered pair of adjacent IP addresses observed in a traceroute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IpLink {
    /// The hop closer to the probe (router `X` in the paper's Δ_XY).
    pub near: Ipv4Addr,
    /// The hop farther from the probe (router `Y`).
    pub far: Ipv4Addr,
}

impl IpLink {
    /// Create a link from `near` to `far`.
    pub fn new(near: Ipv4Addr, far: Ipv4Addr) -> Self {
        IpLink { near, far }
    }

    /// The same pair with direction flipped.
    pub fn reversed(self) -> Self {
        IpLink {
            near: self.far,
            far: self.near,
        }
    }

    /// Canonical (direction-insensitive) form: smaller address first.
    ///
    /// Used when building the alarm graph (Fig. 8/12), where edges are
    /// undirected.
    pub fn canonical(self) -> Self {
        if self.near <= self.far {
            self
        } else {
            self.reversed()
        }
    }

    /// Whether the link references `addr` on either end.
    pub fn touches(&self, addr: Ipv4Addr) -> bool {
        self.near == addr || self.far == addr
    }
}

impl fmt::Display for IpLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.near, self.far)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn reversal_and_canonical() {
        let l = IpLink::new(ip("2.2.2.2"), ip("1.1.1.1"));
        assert_eq!(l.reversed().near, ip("1.1.1.1"));
        assert_eq!(l.canonical().near, ip("1.1.1.1"));
        assert_eq!(l.canonical(), l.reversed().canonical());
    }

    #[test]
    fn touches() {
        let l = IpLink::new(ip("1.1.1.1"), ip("2.2.2.2"));
        assert!(l.touches(ip("1.1.1.1")));
        assert!(l.touches(ip("2.2.2.2")));
        assert!(!l.touches(ip("3.3.3.3")));
    }

    #[test]
    fn display() {
        let l = IpLink::new(ip("193.0.14.129"), ip("80.81.192.154"));
        assert_eq!(l.to_string(), "193.0.14.129 -> 80.81.192.154");
    }
}
