//! Longest-prefix-match table (binary trie).
//!
//! Used in two places: the simulator's FIB (destination IP → origin AS /
//! destination router) and the alarm aggregation's IP-to-AS mapping ("The IP
//! to AS mapping is done using longest prefix match", §6).
//!
//! The trie stores one value per prefix; lookups walk address bits from the
//! most significant, remembering the deepest match. Inserting the same
//! prefix twice replaces the value.

use crate::addr::Prefix;
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Default for Node<V> {
    fn default() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }
}

/// A longest-prefix-match table mapping [`Prefix`]es to values.
#[derive(Debug, Clone)]
pub struct LpmTable<V> {
    root: Node<V>,
    len: usize,
}

// Manual impl: `derive(Default)` would needlessly require `V: Default`.
impl<V> Default for LpmTable<V> {
    fn default() -> Self {
        LpmTable::new()
    }
}

impl<V> LpmTable<V> {
    /// Empty table.
    pub fn new() -> Self {
        LpmTable {
            root: Node::default(),
            len: 0,
        }
    }

    /// Number of stored prefixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert (or replace) a prefix. Returns the previous value, if any.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        let bits = u32::from(prefix.network());
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            node = node.children[bit].get_or_insert_with(Box::default);
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Longest-prefix match: the value of the most specific prefix covering
    /// `addr`, together with that prefix.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<(Prefix, &V)> {
        let bits = u32::from(addr);
        let mut node = &self.root;
        let mut best: Option<(u8, &V)> = node.value.as_ref().map(|v| (0, v));
        for i in 0..32u8 {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            match node.children[bit].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(len, v)| (Prefix::new(addr, len), v))
    }

    /// The value of the most specific covering prefix, or `None`.
    pub fn lookup_value(&self, addr: Ipv4Addr) -> Option<&V> {
        self.lookup(addr).map(|(_, v)| v)
    }

    /// Exact-match lookup of a prefix.
    pub fn get(&self, prefix: &Prefix) -> Option<&V> {
        let bits = u32::from(prefix.network());
        let mut node = &self.root;
        for i in 0..prefix.len() {
            let bit = ((bits >> (31 - i)) & 1) as usize;
            node = node.children[bit].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Iterate over all `(prefix, value)` pairs in trie order.
    pub fn iter(&self) -> Vec<(Prefix, &V)> {
        let mut out = Vec::with_capacity(self.len);
        fn walk<'a, V>(node: &'a Node<V>, bits: u32, depth: u8, out: &mut Vec<(Prefix, &'a V)>) {
            if let Some(v) = node.value.as_ref() {
                out.push((Prefix::new(Ipv4Addr::from(bits), depth), v));
            }
            for (i, child) in node.children.iter().enumerate() {
                if let Some(c) = child.as_deref() {
                    let bit = (i as u32) << (31 - depth);
                    walk(c, bits | bit, depth + 1, out);
                }
            }
        }
        walk(&self.root, 0, 0, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    fn pfx(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn basic_lpm() {
        let mut t = LpmTable::new();
        t.insert(pfx("10.0.0.0/8"), "eight");
        t.insert(pfx("10.1.0.0/16"), "sixteen");
        t.insert(pfx("10.1.2.0/24"), "twentyfour");
        assert_eq!(t.lookup_value(ip("10.9.9.9")), Some(&"eight"));
        assert_eq!(t.lookup_value(ip("10.1.9.9")), Some(&"sixteen"));
        assert_eq!(t.lookup_value(ip("10.1.2.3")), Some(&"twentyfour"));
        assert_eq!(t.lookup_value(ip("11.0.0.1")), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn lookup_reports_matching_prefix() {
        let mut t = LpmTable::new();
        t.insert(pfx("192.168.0.0/16"), 1);
        let (p, v) = t.lookup(ip("192.168.4.5")).unwrap();
        assert_eq!(p, pfx("192.168.0.0/16"));
        assert_eq!(*v, 1);
    }

    #[test]
    fn default_route_catches_everything() {
        let mut t = LpmTable::new();
        t.insert(Prefix::default_route(), 0u32);
        t.insert(pfx("8.8.0.0/16"), 1);
        assert_eq!(t.lookup_value(ip("1.2.3.4")), Some(&0));
        assert_eq!(t.lookup_value(ip("8.8.8.8")), Some(&1));
    }

    #[test]
    fn insert_replaces() {
        let mut t = LpmTable::new();
        assert_eq!(t.insert(pfx("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(pfx("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&pfx("10.0.0.0/8")), Some(&2));
    }

    #[test]
    fn host_route_wins() {
        let mut t = LpmTable::new();
        t.insert(pfx("193.0.14.0/24"), "net");
        t.insert(pfx("193.0.14.129/32"), "kroot");
        assert_eq!(t.lookup_value(ip("193.0.14.129")), Some(&"kroot"));
        assert_eq!(t.lookup_value(ip("193.0.14.128")), Some(&"net"));
    }

    #[test]
    fn iter_lists_all() {
        let mut t = LpmTable::new();
        t.insert(pfx("10.0.0.0/8"), 1);
        t.insert(pfx("10.1.0.0/16"), 2);
        t.insert(pfx("172.16.0.0/12"), 3);
        let items = t.iter();
        assert_eq!(items.len(), 3);
        assert!(items
            .iter()
            .any(|(p, v)| *p == pfx("10.1.0.0/16") && **v == 2));
    }

    #[test]
    fn matches_naive_linear_scan() {
        // Cross-check trie vs brute force on a pseudo-random table.
        let mut t = LpmTable::new();
        let mut list: Vec<(Prefix, u32)> = Vec::new();
        let mut x: u32 = 0x12345678;
        for i in 0..200u32 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let len = 8 + (x % 17) as u8; // 8..24
            let p = Prefix::new(Ipv4Addr::from(x), len);
            t.insert(p, i);
            list.retain(|(q, _)| *q != p);
            list.push((p, i));
        }
        for j in 0..500u32 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let addr = Ipv4Addr::from(x ^ j);
            let expect = list
                .iter()
                .filter(|(p, _)| p.contains(addr))
                .max_by_key(|(p, _)| p.len())
                .map(|(_, v)| *v);
            assert_eq!(t.lookup_value(addr).copied(), expect, "addr {addr}");
        }
    }
}
