//! # pinpoint-model
//!
//! Shared data model for the `pinpoint` workspace: network primitives
//! (IPv4 addresses, ASNs, prefixes, IP-level links), simulation time and
//! hourly bins, and the traceroute measurement record format produced by
//! `pinpoint-atlas` and consumed by `pinpoint-core`.
//!
//! This crate is deliberately tiny and dependency-light so that the
//! detection pipeline (`pinpoint-core`) does not transitively depend on the
//! network simulator (`pinpoint-netsim`): a downstream user can feed real
//! RIPE Atlas data into the detector by converting it into
//! [`records::TracerouteRecord`] values.
//!
//! The scope mirrors the paper: everything is at the **IP layer**. A
//! [`link::IpLink`] is a pair of IP addresses observed adjacently on a
//! traceroute forward path, not a physical cable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod hash;
pub mod json;
pub mod link;
pub mod lpm;
pub mod records;
pub mod time;

pub use addr::{Asn, Prefix};
pub use hash::{FxHashMap, FxHashSet};
pub use link::IpLink;
pub use lpm::LpmTable;
pub use records::{Hop, MeasurementId, ProbeId, Reply, TracerouteRecord};
pub use time::{BinId, SimTime};
