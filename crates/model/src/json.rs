//! Minimal JSON support for measurement-record interchange.
//!
//! The allowed dependency set includes `serde` but not `serde_json`, so this
//! module provides a small self-contained JSON document model ([`Value`]),
//! writer, and recursive-descent parser — enough to export
//! [`TracerouteRecord`]s in an Atlas-like JSON shape and read them back.
//!
//! This is intentionally not a general-purpose JSON library: numbers are
//! `f64`, strings support only the escapes JSON requires, and the parser
//! rejects documents nested deeper than [`MAX_DEPTH`].

use crate::records::{Hop, MeasurementId, ProbeId, Reply, TracerouteRecord};
use crate::{Asn, SimTime};
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Maximum nesting depth accepted by the parser.
pub const MAX_DEPTH: usize = 64;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object. `BTreeMap` keeps key order deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Shorthand: object from key/value pairs.
    pub fn object(pairs: Vec<(&str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Get a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Interpret as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Interpret as u64 (rejects negatives and non-integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Interpret as str.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Interpret as array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Interpret as bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        write!(f, "{}", *n as i64)
                    } else {
                        write!(f, "{n}")
                    }
                } else {
                    // JSON has no NaN/Inf; emit null like most encoders.
                    f.write_str("null")
                }
            }
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Error produced by [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document too deeply nested"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for our records.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

// ---------------------------------------------------------------------------
// TracerouteRecord <-> JSON
// ---------------------------------------------------------------------------

/// Encode a record in an Atlas-like JSON object.
pub fn record_to_json(r: &TracerouteRecord) -> Value {
    let hops = r
        .hops
        .iter()
        .map(|h| {
            let replies = h
                .replies
                .iter()
                .map(|rep| match (rep.from, rep.rtt_ms) {
                    (Some(from), Some(rtt)) => Value::object(vec![
                        ("from", Value::String(from.to_string())),
                        ("rtt", Value::Number(rtt)),
                    ]),
                    _ => Value::object(vec![("x", Value::String("*".into()))]),
                })
                .collect();
            Value::object(vec![
                ("hop", Value::Number(f64::from(h.ttl))),
                ("result", Value::Array(replies)),
            ])
        })
        .collect();
    Value::object(vec![
        ("msm_id", Value::Number(f64::from(r.msm_id.0))),
        ("prb_id", Value::Number(f64::from(r.probe_id.0))),
        ("src_asn", Value::Number(f64::from(r.probe_asn.0))),
        ("dst_addr", Value::String(r.dst.to_string())),
        ("timestamp", Value::Number(r.timestamp.0 as f64)),
        ("paris_id", Value::Number(f64::from(r.paris_id))),
        ("result", Value::Array(hops)),
        ("reached", Value::Bool(r.destination_reached)),
    ])
}

/// Error converting JSON into a [`TracerouteRecord`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "record decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, DecodeError> {
    v.get(key)
        .ok_or_else(|| DecodeError(format!("missing field {key:?}")))
}

/// Decode a record from the JSON shape produced by [`record_to_json`].
pub fn record_from_json(v: &Value) -> Result<TracerouteRecord, DecodeError> {
    let dst: Ipv4Addr = field(v, "dst_addr")?
        .as_str()
        .ok_or_else(|| DecodeError("dst_addr not a string".into()))?
        .parse()
        .map_err(|e| DecodeError(format!("bad dst_addr: {e}")))?;
    let hops = field(v, "result")?
        .as_array()
        .ok_or_else(|| DecodeError("result not an array".into()))?
        .iter()
        .map(|h| {
            let ttl = field(h, "hop")?
                .as_u64()
                .ok_or_else(|| DecodeError("hop not an integer".into()))?
                as u8;
            let replies = field(h, "result")?
                .as_array()
                .ok_or_else(|| DecodeError("hop result not an array".into()))?
                .iter()
                .map(|rep| {
                    if rep.get("x").is_some() {
                        Ok(Reply::TIMEOUT)
                    } else {
                        let from: Ipv4Addr = field(rep, "from")?
                            .as_str()
                            .ok_or_else(|| DecodeError("from not a string".into()))?
                            .parse()
                            .map_err(|e| DecodeError(format!("bad from: {e}")))?;
                        let rtt = field(rep, "rtt")?
                            .as_f64()
                            .ok_or_else(|| DecodeError("rtt not a number".into()))?;
                        Ok(Reply::new(from, rtt))
                    }
                })
                .collect::<Result<Vec<_>, DecodeError>>()?;
            Ok(Hop::new(ttl, replies))
        })
        .collect::<Result<Vec<_>, DecodeError>>()?;
    Ok(TracerouteRecord {
        msm_id: MeasurementId(
            field(v, "msm_id")?
                .as_u64()
                .ok_or_else(|| DecodeError("msm_id not an integer".into()))? as u32,
        ),
        probe_id: ProbeId(
            field(v, "prb_id")?
                .as_u64()
                .ok_or_else(|| DecodeError("prb_id not an integer".into()))? as u32,
        ),
        probe_asn: Asn(field(v, "src_asn")?
            .as_u64()
            .ok_or_else(|| DecodeError("src_asn not an integer".into()))?
            as u32),
        dst,
        timestamp: SimTime(
            field(v, "timestamp")?
                .as_u64()
                .ok_or_else(|| DecodeError("timestamp not an integer".into()))?,
        ),
        paris_id: field(v, "paris_id")?
            .as_u64()
            .ok_or_else(|| DecodeError("paris_id not an integer".into()))? as u16,
        hops,
        destination_reached: field(v, "reached")?
            .as_bool()
            .ok_or_else(|| DecodeError("reached not a bool".into()))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for s in ["null", "true", "false", "0", "-1.5", "1e3", "\"a b\""] {
            let v = parse(s).unwrap();
            let back = parse(&v.to_string()).unwrap();
            assert_eq!(v, back, "round-trip failed for {s}");
        }
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2,{"b":"x\"y"}],"c":null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Null));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x\"y"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"\\q\"").is_err());
    }

    #[test]
    fn rejects_deep_nesting() {
        let doc = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&doc).is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let v = Value::String("a\nb\tc\u{1}".into());
        let s = v.to_string();
        assert_eq!(s, "\"a\\nb\\tc\\u0001\"");
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
    }

    #[test]
    fn record_round_trip() {
        let rec = TracerouteRecord {
            msm_id: MeasurementId(1010),
            probe_id: ProbeId(12345),
            probe_asn: Asn(2497),
            dst: "193.0.14.129".parse().unwrap(),
            timestamp: SimTime(1_448_866_800),
            paris_id: 7,
            hops: vec![
                Hop::new(
                    1,
                    vec![
                        Reply::new("10.0.0.1".parse().unwrap(), 0.52),
                        Reply::TIMEOUT,
                        Reply::new("10.0.0.1".parse().unwrap(), 0.61),
                    ],
                ),
                Hop::new(2, vec![Reply::TIMEOUT; 3]),
            ],
            destination_reached: false,
        };
        let json = record_to_json(&rec).to_string();
        let back = record_from_json(&parse(&json).unwrap()).unwrap();
        assert_eq!(rec, back);
    }

    #[test]
    fn decode_rejects_missing_fields() {
        let v = parse(r#"{"msm_id":1}"#).unwrap();
        assert!(record_from_json(&v).is_err());
    }

    #[test]
    fn number_formatting_integers_stay_integers() {
        assert_eq!(Value::Number(3.0).to_string(), "3");
        assert_eq!(Value::Number(3.25).to_string(), "3.25");
        assert_eq!(Value::Number(f64::NAN).to_string(), "null");
    }
}
