//! # pinpoint
//!
//! Facade crate re-exporting the full `pinpoint` workspace: a reproduction
//! of *"Pinpointing Delay and Forwarding Anomalies Using Large-Scale
//! Traceroute Measurements"* (Fontugne, Aben, Pelsser, Bush — IMC 2017).
//!
//! ```
//! use pinpoint::core::{Analyzer, DetectorConfig};
//! use pinpoint::core::aggregate::AsMapper;
//!
//! // An analyzer ready to consume hourly bins of traceroute records —
//! // see `examples/quickstart.rs` for the end-to-end walk-through.
//! let analyzer = Analyzer::new(DetectorConfig::default(), AsMapper::new());
//! assert_eq!(analyzer.tracked_links(), 0);
//! ```
//!
//! * [`model`] — shared data model (addresses, time bins, traceroute records)
//! * [`stats`] — robust statistics (medians, Wilson scores, entropy, MAD)
//! * [`netsim`] — deterministic Internet simulator with event injection
//! * [`atlas`] — RIPE Atlas measurement platform emulator
//! * [`core`] — the paper's detection pipeline (see its crate docs for the
//!   parallel bin-engine architecture and how to run the benches)
//! * [`scenarios`] — reproducible case-study scenarios
//! * [`service`] — the live daemon (`pinpointd`): collector → executor →
//!   reporter pipeline behind bounded queues, with an HTTP health API

#![forbid(unsafe_code)]

pub use pinpoint_atlas as atlas;
pub use pinpoint_core as core;
pub use pinpoint_model as model;
pub use pinpoint_netsim as netsim;
pub use pinpoint_scenarios as scenarios;
pub use pinpoint_service as service;
pub use pinpoint_stats as stats;
