//! `pinpointd` — the live pinpoint daemon over a simulated Atlas feed.
//!
//! Builds one of the reproducible case studies (`steady` or the AMS-IX
//! `ixp` outage), then serves it live: a collector thread pulls each
//! hourly bin from the platform while the pipelined executor churns the
//! previous one, and the rendered reports are exposed over the HTTP
//! surface (`/health`, `/bins`, `/bins/{id}/report`, `/bins/{id}/events`,
//! `/events`, `/events/{id}`, `/asn/{id}/timeline`, `/alarms/graph`,
//! `/stats`). `POST /shutdown` drains gracefully.
//!
//! `--offline` runs the identical window through the offline
//! `scenarios::run_pipelined` path instead and prints one bin's rendered
//! report to stdout (no trailing newline) — the CI smoke test diffs that
//! byte-for-byte against the daemon's `/bins/{id}/report` body.
//! `--offline --events` prints the final ranked event listing instead —
//! the exact bytes the daemon serves for `/events` once the feed drains.
//!
//! Crash safety: `--checkpoint-every=N --checkpoint-dir=PATH` persists a
//! byte-stable snapshot every N bins; after a crash (`kill -9` included)
//! the same command line plus `--resume` restores the newest valid
//! checkpoint and replays only the remaining bins — every report
//! byte-identical to an uninterrupted run, which the CI chaos job
//! verifies. `--faults=mild|hostile` (with `--fault-seed=N`) runs the
//! feed through the deterministic netsim fault injector: the collector
//! rides out stalls, retries disconnects with capped backoff, and
//! rejects duplicated/reordered bins.

use pinpoint::core::render;
use pinpoint::core::{Analyzer, DetectorConfig};
use pinpoint::model::records::TracerouteRecord;
use pinpoint::model::BinId;
use pinpoint::netsim::{ArtifactModel, FaultModel, FaultyFeed, FeedEvent};
use pinpoint::scenarios::{ixp, runner, steady, CaseStudy, Scale};
use pinpoint::service::{CheckpointStore, Daemon, FeedSignal, Phase, ServiceConfig, SignalFeed};

/// An owning bin feed: `Platform::stream` borrows the platform, but the
/// collector thread needs an iterator it can take with it.
struct PlatformFeed {
    platform: pinpoint::atlas::Platform,
    next: u64,
    end: u64,
}

impl Iterator for PlatformFeed {
    type Item = (BinId, Vec<TracerouteRecord>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.end {
            return None;
        }
        let bin = BinId(self.next);
        self.next += 1;
        Some((bin, self.platform.collect_bin(bin)))
    }
}

struct Args {
    scenario: String,
    seed: u64,
    bins: Option<u64>,
    depth: usize,
    addr: String,
    artifacts: String,
    fast: bool,
    offline: bool,
    bin: Option<u64>,
    events: bool,
    checkpoint_every: u64,
    checkpoint_dir: Option<String>,
    resume: bool,
    faults: String,
    fault_seed: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: pinpointd [--scenario=steady|ixp] [--seed=N] [--bins=N] \
         [--depth=N] [--addr=HOST:PORT] [--artifacts=none|mild|hostile] \
         [--fast] [--checkpoint-every=N] [--checkpoint-dir=PATH] [--resume] \
         [--faults=none|mild|hostile] [--fault-seed=N] \
         [--offline [--bin=N] [--events]]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        scenario: "ixp".to_string(),
        seed: 42,
        bins: None,
        depth: 0,
        addr: "127.0.0.1:7411".to_string(),
        artifacts: "none".to_string(),
        fast: false,
        offline: false,
        bin: None,
        events: false,
        checkpoint_every: 0,
        checkpoint_dir: None,
        resume: false,
        faults: "none".to_string(),
        fault_seed: None,
    };
    for arg in std::env::args().skip(1) {
        let (key, value) = match arg.split_once('=') {
            Some((k, v)) => (k, Some(v)),
            None => (arg.as_str(), None),
        };
        match (key, value) {
            ("--scenario", Some(v)) => args.scenario = v.to_string(),
            ("--seed", Some(v)) => args.seed = v.parse().unwrap_or_else(|_| usage()),
            ("--bins", Some(v)) => args.bins = Some(v.parse().unwrap_or_else(|_| usage())),
            ("--depth", Some(v)) => args.depth = v.parse().unwrap_or_else(|_| usage()),
            ("--addr", Some(v)) => args.addr = v.to_string(),
            ("--artifacts", Some(v)) => args.artifacts = v.to_string(),
            ("--fast", None) => args.fast = true,
            ("--offline", None) => args.offline = true,
            ("--bin", Some(v)) => args.bin = Some(v.parse().unwrap_or_else(|_| usage())),
            ("--events", None) => args.events = true,
            ("--checkpoint-every", Some(v)) => {
                args.checkpoint_every = v.parse().unwrap_or_else(|_| usage())
            }
            ("--checkpoint-dir", Some(v)) => args.checkpoint_dir = Some(v.to_string()),
            ("--resume", None) => args.resume = true,
            ("--faults", Some(v)) => args.faults = v.to_string(),
            ("--fault-seed", Some(v)) => {
                args.fault_seed = Some(v.parse().unwrap_or_else(|_| usage()))
            }
            ("--help" | "-h", None) => usage(),
            _ => usage(),
        }
    }
    args
}

/// Assemble the requested case study with the window / config overrides
/// applied — shared by the live and offline paths so both see the exact
/// same feed.
fn build_case(args: &Args) -> CaseStudy {
    let mut case = match args.scenario.as_str() {
        "steady" => steady::case_study(args.seed, Scale::Small),
        "ixp" => ixp::case_study(args.seed, Scale::Small),
        _ => usage(),
    };
    if args.fast {
        case.cfg = DetectorConfig::fast_test();
    }
    if let Some(bins) = args.bins {
        case.end_bin = BinId(case.end_bin.0.min(case.start_bin.0 + bins));
    }
    let model = match args.artifacts.as_str() {
        "none" => None,
        "mild" => Some(ArtifactModel::mild(args.seed)),
        "hostile" => Some(ArtifactModel::hostile(args.seed)),
        _ => usage(),
    };
    case.platform.set_artifact_model(model);
    case
}

/// Offline reference: run the window through `scenarios::run_pipelined`
/// and print the target bin's rendered report — the exact bytes the
/// daemon serves for `/bins/{id}/report`.
fn run_offline(args: &Args, case: CaseStudy) -> i32 {
    let target = args.bin.unwrap_or(case.end_bin.0.saturating_sub(1));
    let mut analyzer = case.analyzer();
    if args.events {
        // Fold the incremental event channel exactly as the daemon's
        // reporter does: the final listing must equal the live /events.
        let mut table = pinpoint::core::EventTable::new();
        runner::run_pipelined(&case, &mut analyzer, args.depth, |report| {
            table.absorb(&report.events);
        });
        // No trailing newline: stdout must equal the HTTP body.
        print!("{}", render::events(&table.ranked()));
        return 0;
    }
    let mut body = None;
    runner::run_pipelined(&case, &mut analyzer, args.depth, |report| {
        if report.bin.0 == target {
            body = Some(render::bin_report(report).to_string());
        }
    });
    match body {
        Some(body) => {
            // No trailing newline: stdout must equal the HTTP body.
            print!("{body}");
            0
        }
        None => {
            eprintln!(
                "pinpointd: bin {target} outside the window [{}, {})",
                case.start_bin.0, case.end_bin.0
            );
            1
        }
    }
}

fn run_live(args: &Args, case: CaseStudy) -> i32 {
    // Resume: restore the newest valid checkpoint and start the feed
    // just past the last bin it covers. Snapshots normalize the
    // throughput knobs, so re-pin them from the case config — they
    // change wall-clock behaviour only, never report bytes.
    let mut resume_from = None;
    let analyzer: Analyzer = if args.resume {
        let Some(dir) = args.checkpoint_dir.as_deref() else {
            eprintln!("pinpointd: --resume requires --checkpoint-dir");
            return 2;
        };
        match CheckpointStore::new(dir).load_latest() {
            Some((last_bin, snapshot)) => {
                let knobs = case.cfg.clone();
                match Analyzer::restore_with(&snapshot, |c| {
                    c.threads = knobs.threads;
                    c.ingest_chunk_records = knobs.ingest_chunk_records;
                    c.pipeline_depth = knobs.pipeline_depth;
                    c.radix_min_keys = knobs.radix_min_keys;
                }) {
                    Ok(analyzer) => {
                        eprintln!("pinpointd: resumed from checkpoint at bin {last_bin}");
                        resume_from = Some(last_bin);
                        analyzer
                    }
                    Err(e) => {
                        eprintln!("pinpointd: checkpoint restore failed: {e:?}");
                        return 1;
                    }
                }
            }
            None => {
                eprintln!("pinpointd: no valid checkpoint in {dir}; starting fresh");
                case.analyzer()
            }
        }
    } else {
        case.analyzer()
    };
    let start = resume_from.map_or(case.start_bin.0, |b| (b + 1).max(case.start_bin.0));
    let window = case.end_bin.0.saturating_sub(start);
    let feed = PlatformFeed {
        next: start,
        end: case.end_bin.0,
        platform: case.platform,
    };
    let cfg = ServiceConfig {
        addr: args.addr.clone(),
        depth: args.depth,
        checkpoint_every: args.checkpoint_every,
        checkpoint_dir: args.checkpoint_dir.clone().map(Into::into),
        resume_from,
        ..ServiceConfig::default()
    };
    let spawned = match args.faults.as_str() {
        "none" => Daemon::spawn(cfg, analyzer, feed),
        grade => {
            let model = match grade {
                "mild" => FaultModel::mild(args.fault_seed.unwrap_or(args.seed)),
                "hostile" => FaultModel::hostile(args.fault_seed.unwrap_or(args.seed)),
                _ => usage(),
            };
            let signals = FaultyFeed::new(feed, model).map(|event| match event {
                FeedEvent::Bin(bin, records) => FeedSignal::Bin(bin, records),
                FeedEvent::Stall(n) => FeedSignal::Stall(n),
                FeedEvent::Disconnect => FeedSignal::Disconnect,
            });
            Daemon::spawn_recovering(cfg, analyzer, SignalFeed(signals))
        }
    };
    let daemon = match spawned {
        Ok(d) => d,
        Err(e) => {
            eprintln!("pinpointd: failed to start: {e}");
            return 1;
        }
    };
    eprintln!(
        "pinpointd: serving {} ({window} bins) on http://{}",
        args.scenario,
        daemon.local_addr()
    );
    // The feed is finite: wait until every bin is reported, then keep
    // serving the cached reports until someone POSTs /shutdown.
    let state = std::sync::Arc::clone(daemon.state());
    state.wait_done();
    if matches!(state.phase(), Phase::Failed) {
        eprintln!(
            "pinpointd: pipeline failed: {}",
            state
                .last_fault()
                .unwrap_or_else(|| "unknown fault".to_string())
        );
        let _ = daemon.join();
        return 1;
    }
    eprintln!("pinpointd: feed drained; serving cached reports (POST /shutdown to exit)");
    state.wait_shutdown_requested();
    match daemon.join() {
        Ok(()) => {
            eprintln!("pinpointd: drained and stopped");
            0
        }
        Err(_) => {
            eprintln!("pinpointd: a pipeline thread panicked");
            1
        }
    }
}

fn main() {
    let args = parse_args();
    let case = build_case(&args);
    let code = if args.offline {
        run_offline(&args, case)
    } else {
        run_live(&args, case)
    };
    std::process::exit(code);
}
