//! Live-service walk-through: run the pinpoint daemon in-process over a
//! simulated feed and poke its HTTP surface like an operator would.
//!
//! The daemon is the deployment shape of the pipeline (§8's "Internet
//! Health Report"): a collector thread pulls bin *n+1* from the feed
//! while the depth-2 pipelined session churns bin *n*, joined by bounded
//! queues (a slow stage stalls the one above it — never a backlog), and
//! a reporter renders each report once into an immutable cache that the
//! HTTP workers serve byte-identically to every client. The rendered
//! bytes are the same bytes the offline `scenarios::run_pipelined` path
//! produces — the determinism contract, extended to the service
//! (`tests/service_parity.rs`).
//!
//! ```sh
//! cargo run --release --example live_service
//! ```

use pinpoint::scenarios::{steady, Scale};
use pinpoint::service::{Daemon, ServiceConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// One raw HTTP/1.1 request — the daemon's surface is plain std TCP, so
/// a plain std client is all it takes.
fn http(addr: SocketAddr, method: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("daemon is listening");
    stream
        .write_all(format!("{method} {path} HTTP/1.1\r\nHost: pinpointd\r\n\r\n").as_bytes())
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw.split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or(raw)
}

fn main() {
    // A quiet week-end of hourly bins from the steady-state scenario.
    let case = steady::case_study(2015, Scale::Small);
    let window = (case.start_bin.0, case.start_bin.0 + 8);
    let feed = case
        .platform
        .collect_bins(case.start_bin, pinpoint::model::BinId(window.1));

    // Ephemeral port, default bounded queues (4/4), 8 HTTP workers.
    let daemon = Daemon::spawn(ServiceConfig::default(), case.analyzer(), feed.into_iter())
        .expect("daemon spawns");
    let addr = daemon.local_addr();
    println!("pinpointd listening on http://{addr}");

    // The feed is finite: wait until every bin is collected, analyzed,
    // rendered, and cached.
    daemon.state().wait_done();

    println!("\nGET /health\n{}", http(addr, "GET", "/health"));
    println!("\nGET /bins\n{}", http(addr, "GET", "/bins"));
    let last = window.1 - 1;
    let report = http(addr, "GET", &format!("/bins/{last}/report"));
    println!("\nGET /bins/{last}/report ({} bytes)", report.len());
    println!("{}…", &report[..report.len().min(160)]);
    println!(
        "\nGET /alarms/graph\n{}",
        http(addr, "GET", "/alarms/graph")
    );
    println!("\nGET /stats\n{}", http(addr, "GET", "/stats"));

    // The cache is immutable: every client reads the identical bytes.
    let again = http(addr, "GET", &format!("/bins/{last}/report"));
    assert_eq!(report, again, "cached report must be byte-stable");

    // Graceful shutdown: drains the pipeline, joins every thread.
    println!("\nPOST /shutdown\n{}", http(addr, "POST", "/shutdown"));
    daemon.join().expect("clean exit");
    println!("daemon drained and stopped");
}
