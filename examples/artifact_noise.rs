//! Measurement-artifact robustness walk-through: the AMS-IX outage
//! replayed under graded feed corruption.
//!
//! Real Atlas feeds are riddled with measurement artifacts — false links
//! and loops painted by per-flow load balancing, wrong-hop ICMP reply
//! attribution, duplicated and missing hops, probe clock skew. This
//! example injects each grade of the `scenarios::artifacts` sweep via
//! the deterministic `ArtifactModel`, replays the same ground-truth IXP
//! outage through the full pipelined analyzer, and reads back:
//!
//! * the sanitizer's counters (`Analyzer::sanitize_stats`) — how many
//!   records were quarantined per class vs repaired in place;
//! * the detection scores — outage-bin recall and settled false-alarm
//!   rate against the known truth bins, the same numbers CI gates.
//!
//! ```sh
//! cargo run --release --example artifact_noise
//! ```

use pinpoint::scenarios::artifacts::{self, NoiseGrade};

fn main() {
    let seed = 2015;
    let (first, last) = artifacts::outage_bins();
    println!(
        "AMS-IX outage replay, truth bins {first}–{last}, seed {seed}\n\
         grade    | recall (gate) | false alarms (gate) | quarantined (loops/rtt/invert/hops) | repaired"
    );
    for grade in NoiseGrade::ALL {
        let outcome = artifacts::evaluate(seed, grade);
        let s = &outcome.sanitize;
        println!(
            "{:<8} |  {:.2}  ({:.2}) |     {:.3}  ({:.2})   | {:>6} ({}/{}/{}/{})              | {:>6}",
            grade.label(),
            outcome.recall,
            grade.recall_gate(),
            outcome.false_alarm_rate,
            grade.false_alarm_gate(),
            s.quarantined(),
            s.quarantined_loops,
            s.quarantined_rtt,
            s.quarantined_inversions,
            s.quarantined_hops,
            s.repaired,
        );
        assert!(
            outcome.passes(),
            "{} grade failed its robustness gates",
            grade.label()
        );
    }
    println!("\nevery grade clears its robustness gates");
}
