//! §8 "Internet Health Report": streaming near-real-time monitoring.
//!
//! Consumes the measurement platform's bin stream the way the deployed
//! system consumes the RIPE Atlas streaming API, printing a compact status
//! line per hour and full alarm details whenever an AS's magnitude crosses
//! a reporting threshold — the operator-facing view the paper ships.
//!
//! ```sh
//! cargo run --release --example health_report
//! ```

use pinpoint::core::aggregate::EventExtractor;
use pinpoint::scenarios::full;
use pinpoint::scenarios::runner::figure_ases;
use pinpoint::scenarios::Scale;

/// Report an AS when |magnitude| crosses this threshold.
const REPORT_THRESHOLD: f64 = 3.0;

/// Bridge up to this many quiet bins inside one incident.
const GAP_BINS: u64 = 1;

fn main() {
    let case = full::case_study(2015, Scale::Small);
    let watched = figure_ases(&case.landmarks);
    println!("Internet Health Report — streaming mode");
    println!("epoch: {} | watching {:?}\n", case.epoch_label, watched);

    let mut analyzer = case.analyzer();
    let mut extractor = EventExtractor::new();
    let mut incidents = 0;
    for (bin, records) in case.platform.stream(case.start_bin, case.end_bin) {
        let report = analyzer.process_bin(bin, &records);
        extractor.push(bin, &report.magnitudes);

        // One status line per "hour" of stream time.
        let total_mag: f64 = report
            .magnitudes
            .values()
            .map(|m| m.delay_magnitude.abs() + m.forwarding_magnitude.abs())
            .sum();
        if bin.0 % 24 == 0 {
            println!(
                "[{bin}] {} traceroutes, {} links, background |mag| sum {:.1}",
                report.records,
                report.link_stats.len(),
                total_mag
            );
        }

        // Incident reporting.
        for (&asn, m) in &report.magnitudes {
            if !watched.contains(&asn) {
                continue;
            }
            if m.delay_magnitude.abs() > REPORT_THRESHOLD
                || m.forwarding_magnitude.abs() > REPORT_THRESHOLD
            {
                incidents += 1;
                println!(
                    "⚠ [{bin}] {asn}: delay mag {:+.1}, forwarding mag {:+.1} ({} delay / {} fwd alarms this bin)",
                    m.delay_magnitude,
                    m.forwarding_magnitude,
                    report.delay_alarms.len(),
                    report.forwarding_alarms.len()
                );
                for alarm in report.delay_alarms.iter().take(2) {
                    println!("    {alarm}");
                }
                for alarm in report.forwarding_alarms.iter().take(2) {
                    println!("    {alarm}");
                }
            }
        }
    }
    println!("\nstream complete: {incidents} AS-hours crossed the reporting threshold");

    // Consolidated incident report: maximal over-threshold runs per AS,
    // ranked by peak magnitude (the operator triage list).
    println!("\n=== consolidated incidents (threshold {REPORT_THRESHOLD}) ===");
    for event in extractor
        .events_with(REPORT_THRESHOLD, GAP_BINS)
        .iter()
        .take(10)
    {
        println!("  {event}");
    }
}
