//! Quickstart: simulate a small Internet, inject one congestion event,
//! detect it, and print what the pipeline saw.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pinpoint::atlas::{deploy_probes, Platform};
use pinpoint::core::aggregate::AsMapper;
use pinpoint::core::{Analyzer, DetectorConfig};
use pinpoint::model::{Asn, BinId, SimTime};
use pinpoint::netsim::events::{EventSchedule, LinkSelector, NetworkEvent};
use pinpoint::netsim::{Network, TopologyConfig};

fn main() {
    // 1. A seeded background Internet: 4 tier-1s, 12 transits, 48 stubs.
    let topo = TopologyConfig::default().build();
    println!(
        "topology: {} ASes, {} routers, {} links",
        topo.ases.len(),
        topo.routers.len(),
        topo.links.len()
    );

    // 2. Pick a victim stub and congest its uplinks for two hours.
    let victim: Asn = topo.stub_ases().nth(5).unwrap().asn;
    let schedule = EventSchedule::new().with(NetworkEvent::Congestion {
        selector: LinkSelector::WithinAs(victim),
        start: SimTime::from_hours(30),
        end: SimTime::from_hours(32),
        extra_util: 0.6,
    });
    println!("ground truth: congestion in {victim} during bins 30..32");

    // 3. Measurement platform: 80 probes, anchoring traceroutes towards a
    //    handful of stub routers (including one inside the victim).
    let mapper = AsMapper::from_prefixes(
        topo.prefixes
            .iter()
            .into_iter()
            .map(|(p, id)| (p, topo.asn(*id).asn)),
    );
    // Include a router inside the victim: links are only monitorable when
    // probes from ≥3 ASes traceroute *through* them (§4.3) — a stub that is
    // never a target is invisible, as the paper notes in its conclusion.
    let mut targets: Vec<std::net::Ipv4Addr> = topo
        .stub_ases()
        .step_by(9)
        .map(|a| topo.router(a.routers[0]).ip)
        .collect();
    let victim_router = topo
        .stub_ases()
        .find(|a| a.asn == victim)
        .map(|a| topo.router(a.routers[0]).ip)
        .unwrap();
    targets.push(victim_router);
    let net = Network::new(topo, 42, &schedule);
    let probes = deploy_probes(net.topology(), 80, 42);
    let mut platform = Platform::new(net, probes);
    platform.add_anchoring(&targets, 1);

    // 4. Run the detection pipeline over 36 hourly bins.
    let mut analyzer = Analyzer::new(DetectorConfig::fast_test(), mapper);
    analyzer.register_ases([victim]);
    for (bin, records) in platform.stream(BinId(0), BinId(36)) {
        let report = analyzer.process_bin(bin, &records);
        let mag = report
            .magnitude(victim)
            .map(|m| m.delay_magnitude)
            .unwrap_or(0.0);
        if !report.delay_alarms.is_empty() || mag.abs() > 1.0 {
            println!(
                "bin {:>3}: {:>2} delay alarms, {:>2} forwarding alarms, {} mag {:+.1}",
                bin.0,
                report.delay_alarms.len(),
                report.forwarding_alarms.len(),
                victim,
                mag
            );
            for alarm in report.delay_alarms.iter().take(3) {
                println!("         {alarm}");
            }
        }
    }
    println!(
        "tracked {} links and {} forwarding models",
        analyzer.tracked_links(),
        analyzer.tracked_patterns()
    );
}
