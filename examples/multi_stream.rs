//! Multi-stream fleet walk-through: the §7.3 AMS-IX outage observed from
//! three measurement streams at once.
//!
//! A `StreamRouter` owns one `Analyzer` per stream (two anchor meshes and
//! a user-defined measurement) and runs every bin of the whole fleet
//! through ONE shared worker pool — stream A's delay shards interleave
//! with stream B's forwarding shards on the same threads. Each stream
//! keeps its own references and magnitude baselines; the fleet view sums
//! per-AS severities across streams before normalization, so an outage
//! that every single stream sees only weakly crosses the reporting
//! threshold in the merged view.
//!
//! ```sh
//! cargo run --release --example multi_stream
//! ```

use pinpoint::core::DetectorConfig;
use pinpoint::model::BinId;
use pinpoint::scenarios::{ixp, multi, Scale};

fn main() {
    let mut case = multi::case_study(2015, Scale::Small);
    case.cfg = DetectorConfig::fast_test();
    let amsix = case.landmarks.amsix_asn;
    let (outage_start, outage_end) = ixp::outage_bins();

    println!("fleet streams:");
    for spec in &case.streams {
        println!("  {:<14} {} measurements", spec.label, spec.msm_ids.len());
    }
    println!("\nground truth: {amsix} fabric outage in bins {outage_start}..{outage_end}\n");

    // One router, one shared pool for every stream's shard jobs.
    let mut router = case.router();
    let mut merged_min = f64::INFINITY;
    let mut stream_min = vec![f64::INFINITY; case.streams.len()];

    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10}",
        "bin", "mesh-a", "mesh-b", "user", "merged"
    );
    for bin in outage_start - 4..outage_end + 2 {
        let feeds = case.collect_bin(BinId(bin));
        let report = router.process_bin(BinId(bin), &feeds);
        let per_stream: Vec<f64> = report
            .streams
            .iter()
            .map(|r| r.magnitude(amsix).map_or(0.0, |m| m.forwarding_magnitude))
            .collect();
        let merged = report
            .magnitude(amsix)
            .map_or(0.0, |m| m.forwarding_magnitude);
        println!(
            "{bin:>5} {:>10.2} {:>10.2} {:>10.2} {merged:>10.2}",
            per_stream[0], per_stream[1], per_stream[2]
        );
        if bin >= outage_start {
            merged_min = merged_min.min(merged);
            for (slot, v) in stream_min.iter_mut().zip(&per_stream) {
                *slot = slot.min(*v);
            }
        }
    }

    println!("\ndeepest AS{} forwarding magnitudes:", amsix.0);
    for (spec, min) in case.streams.iter().zip(&stream_min) {
        println!("  {:<14} {min:>8.2}", spec.label);
    }
    println!("  {:<14} {merged_min:>8.2}   <- the fleet view", "merged");
    println!(
        "\ntracked fleet state: {} links, {} forwarding models across {} streams",
        router.tracked_links(),
        router.tracked_patterns(),
        router.len()
    );
}
