//! Incremental chunked ingestion walk-through: feeding a bin the way the
//! streaming Atlas API delivers it.
//!
//! The §8 deployment never sees a bin as one materialized `Vec` — results
//! trickle in. The chunked ingestion front-end makes that the native
//! shape: open a bin with `Analyzer::begin_bin`, hand over record slices
//! with `Analyzer::ingest` as they arrive (each call scatters its chunks
//! on the engine pool against the persistent intern tables), and close
//! with `Analyzer::finish_bin`. Because per-shard rows concatenate in
//! chunk (= arrival) order, the report is **byte-identical** to a batch
//! `process_bin` over the concatenated records — chunking is invisible.
//!
//! The example also shows the interning epoch at work: the first bin
//! interns every link, probe, pattern, and next hop once; steady-state
//! bins perform zero intern-table insertions.
//!
//! ```sh
//! cargo run --release --example chunked_ingest
//! ```

use pinpoint::core::DetectorConfig;
use pinpoint::model::BinId;
use pinpoint::scenarios::{steady, Scale};

fn main() {
    let case = steady::case_study(2015, Scale::Small);
    let mut cfg = DetectorConfig::fast_test();
    // Scatter chunk size: purely a throughput/latency knob — output is
    // byte-identical for any value (0 = auto).
    cfg.ingest_chunk_records = 64;

    println!(
        "steady scenario, Small scale: {} records/bin, chunk = {} records\n",
        case.platform.collect_bin(BinId(0)).len(),
        cfg.ingest_chunk_records
    );

    let mut incremental = pinpoint::core::Analyzer::new(cfg.clone(), case.mapper.clone());
    let mut batch = pinpoint::core::Analyzer::new(cfg, case.mapper.clone());

    println!(
        "{:>4} {:>7} {:>7} {:>8} {:>8} {:>14} {:>9}",
        "bin", "chunks", "records", "alarms", "links", "intern-inserts", "interned"
    );
    for bin in 0..4u64 {
        // The platform yields the bin as arrival-ordered record chunks —
        // what an async reader would hand the analyzer piece by piece.
        let chunks = case.platform.collect_bin_chunked(BinId(bin), 64);

        incremental.begin_bin(BinId(bin));
        for chunk in &chunks {
            incremental.ingest(chunk); // scatter now, analyze at finish
        }
        let report = incremental.finish_bin();

        let stats = incremental.ingest_stats();
        println!(
            "{bin:>4} {:>7} {:>7} {:>8} {:>8} {:>14} {:>9}",
            chunks.len(),
            report.records,
            report.delay_alarms.len() + report.forwarding_alarms.len(),
            report.link_stats.len(),
            stats.bin_insertions,
            stats.interned,
        );

        // The batch path over the concatenation must agree byte-for-byte.
        let merged: Vec<_> = chunks.into_iter().flatten().collect();
        let want = batch.process_bin(BinId(bin), &merged);
        assert_eq!(report.delay_alarms, want.delay_alarms);
        assert_eq!(report.forwarding_alarms, want.forwarding_alarms);
        assert_eq!(report.link_stats, want.link_stats);
        assert_eq!(report.magnitudes, want.magnitudes);
    }

    println!(
        "\nincremental == batch for every bin; bins 1+ re-interned nothing \
         (epoch persistence: known keys resolve lock-free, no insertions)."
    );
}
