//! §7.1 case study: DDoS against anycast DNS root servers.
//!
//! Reproduces the analysis pipeline of the paper's first case study on the
//! simulated world: two attack windows hit most K-root instances, the
//! per-AS delay magnitude spikes in both, and the per-instance link view
//! shows which sites suffered (and that Poznan stayed clean).
//!
//! ```sh
//! cargo run --release --example ddos_root_servers
//! ```

use pinpoint::model::IpLink;
use pinpoint::scenarios::ddos;
use pinpoint::scenarios::runner::run;
use pinpoint::scenarios::Scale;

fn main() {
    let scale = Scale::Small;
    let case = ddos::case_study(2015, scale);
    let kroot_asn = case.landmarks.kroot_asn;
    let kroot_addr = case.landmarks.kroot_addr;
    println!(
        "epoch: {} | window bins {}..{}",
        case.epoch_label, case.start_bin.0, case.end_bin.0
    );
    let (a1s, a1e) = ddos::attack1(scale);
    let (a2s, a2e) = ddos::attack2(scale);
    println!("attack 1: {} – {} | attack 2: {} – {}", a1s, a1e, a2s, a2e);

    // Instance last-hop links: (adjacent router IP, K-root service address).
    let instance_links: Vec<(&str, IpLink)> = Vec::new();
    let mut instance_links = instance_links;

    let mut analyzer = case.analyzer();
    let mut magnitude_series: Vec<(u64, f64)> = Vec::new();
    let mut per_link_series: std::collections::BTreeMap<IpLink, Vec<(u64, f64, bool)>> =
        Default::default();

    let summary = run(&case, &mut analyzer, |report| {
        if let Some(m) = report.magnitude(kroot_asn) {
            magnitude_series.push((report.bin.0, m.delay_magnitude));
        }
        for (link, stat) in &report.link_stats {
            if link.far == kroot_addr {
                let alarmed = report.delay_alarms.iter().any(|a| a.link == *link);
                per_link_series.entry(*link).or_default().push((
                    report.bin.0,
                    stat.median(),
                    alarmed,
                ));
            }
        }
    });
    println!(
        "processed {} bins / {} traceroutes; {} delay alarms, {} forwarding alarms\n",
        summary.bins, summary.records, summary.delay_alarms, summary.forwarding_alarms
    );

    // Fig. 6 analogue: the K-root operator AS magnitude.
    println!("K-root operator ({kroot_asn}) delay-change magnitude (hours with |mag| > 2):");
    for (bin, mag) in &magnitude_series {
        if mag.abs() > 2.0 {
            println!("  bin {bin:>4} ({:>6.1} h): {mag:+8.1}", *bin as f64);
        }
    }

    // Fig. 7 analogue: per-instance last-hop links.
    println!("\nper-instance view (last hop to the anycast address):");
    for (link, series) in &per_link_series {
        let alarmed_bins: Vec<u64> = series
            .iter()
            .filter(|(_, _, alarmed)| *alarmed)
            .map(|(b, _, _)| *b)
            .collect();
        let meds: Vec<f64> = series.iter().map(|(_, m, _)| *m).collect();
        let lo = meds.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = meds.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "  {} : median Δ in [{lo:.2}, {hi:.2}] ms, alarmed bins: {alarmed_bins:?}",
            link
        );
        instance_links.push(("", *link));
    }

    // Fig. 8 analogue: the alarm component around K-root at the peak hour.
    let peak_bin = magnitude_series
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .map(|(b, _)| *b)
        .unwrap_or(0);
    println!("\nalarm graph at peak bin {peak_bin}:");
    // Re-run just the peak bin on a fresh analyzer warmed to that point.
    let mut analyzer2 = case.analyzer();
    let mut component_summary = None;
    run(&case, &mut analyzer2, |report| {
        if report.bin.0 == peak_bin {
            let g = report.alarm_graph();
            if let Some(c) = g.component_of(kroot_addr) {
                component_summary = Some((
                    c.nodes.len(),
                    c.edges.len(),
                    c.degree(kroot_addr),
                    c.forwarding_flagged.len(),
                ));
            }
        }
    });
    match component_summary {
        Some((nodes, edges, degree, flagged)) => println!(
            "  component around K-root: {nodes} IPs, {edges} alarm edges, anycast degree {degree}, {flagged} forwarding-flagged"
        ),
        None => println!("  (no component at peak bin — try Scale::Paper for full fidelity)"),
    }
}
