//! §7.2 case study: the Telekom Malaysia route leak through Level3
//! Global Crossing.
//!
//! Shows both detectors firing together: rerouted traffic congests the two
//! Level3 ASes (delay alarms, Fig. 9) while saturated routers drop packets
//! (negative forwarding magnitude, Fig. 10), and the London alarm
//! component carries per-link delay labels (Fig. 12).
//!
//! ```sh
//! cargo run --release --example route_leak
//! ```

use pinpoint::scenarios::leak;
use pinpoint::scenarios::runner::run;
use pinpoint::scenarios::Scale;

fn main() {
    let case = leak::case_study(2015, Scale::Small);
    let (gc, l3, tm) = (
        case.landmarks.gc_asn,
        case.landmarks.level3_asn,
        case.landmarks.tm_asn,
    );
    let (ls, le) = leak::leak_window();
    println!("epoch: {}", case.epoch_label);
    println!("ground truth: {tm} leaks to {gc} during {ls} – {le}\n");

    let mut analyzer = case.analyzer();
    let mut series: Vec<(u64, f64, f64, f64, f64)> = Vec::new();
    let mut peak_report: Option<(u64, usize, usize)> = None;
    let mut london_component: Option<String> = None;

    run(&case, &mut analyzer, |report| {
        let g = report.magnitude(gc).copied().unwrap_or_default();
        let l = report.magnitude(l3).copied().unwrap_or_default();
        series.push((
            report.bin.0,
            g.delay_magnitude,
            g.forwarding_magnitude,
            l.delay_magnitude,
            l.forwarding_magnitude,
        ));
        let in_leak = report.bin.0 >= ls.0 / 3600 && report.bin.0 <= le.0 / 3600;
        if in_leak {
            let better = peak_report
                .map(|(_, d, _)| report.delay_alarms.len() > d)
                .unwrap_or(true);
            if better {
                peak_report = Some((
                    report.bin.0,
                    report.delay_alarms.len(),
                    report.forwarding_alarms.len(),
                ));
                // Fig. 12 analogue: the largest alarm component with its
                // median-shift edge labels.
                let g = report.alarm_graph();
                if let Some(c) = g.components().into_iter().next() {
                    let mut s = format!(
                        "{} IPs, {} edges, {} forwarding-flagged; strongest edges:",
                        c.nodes.len(),
                        c.edges.len(),
                        c.forwarding_flagged.len()
                    );
                    let mut edges = c.edges.clone();
                    edges
                        .sort_by(|a, b| b.median_shift_ms.partial_cmp(&a.median_shift_ms).unwrap());
                    for e in edges.iter().take(5) {
                        s.push_str(&format!(
                            "\n    {} — {}  +{:.0} ms",
                            e.a, e.b, e.median_shift_ms
                        ));
                    }
                    london_component = Some(s);
                }
            }
        }
    });

    println!("per-AS magnitudes (bins where any |mag| > 2):");
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10}",
        "bin", "GC dly", "GC fwd", "L3 dly", "L3 fwd"
    );
    for (bin, gd, gf, ld, lf) in &series {
        if gd.abs() > 2.0 || gf.abs() > 2.0 || ld.abs() > 2.0 || lf.abs() > 2.0 {
            println!("{bin:>5} {gd:>10.1} {gf:>10.1} {ld:>10.1} {lf:>10.1}");
        }
    }

    if let Some((bin, d, f)) = peak_report {
        println!("\npeak bin {bin}: {d} delay alarms, {f} forwarding alarms");
    }
    if let Some(c) = london_component {
        println!("largest alarm component at peak: {c}");
    }
}
