//! Cross-bin pipelined execution walk-through: overlapping bin *n+1*'s
//! ingestion with bin *n*'s analysis on one worker herd.
//!
//! The deployment analyzes every hour of traceroutes continuously, so
//! wall-clock throughput is set by the serial chain *ingest bin → analyze
//! bin → ingest next bin*. The depth-2 pipelined executor breaks that
//! chain: push bins into `Analyzer::pipelined(2)` and each push runs the
//! *previous* bin's delay + forwarding shard jobs concurrently with the
//! pushed bin's scatter chunks, as one two-lane wave on the shared engine
//! pool. Reports come back strictly in bin order, one bin behind, and the
//! determinism contract extends to the overlap: output is
//! **byte-identical** to the serial schedule for any thread count, chunk
//! size, and pipeline depth — intern epochs only advance at the serial
//! merge fence between waves, and compaction sweeps drain the pipeline
//! first (the epoch fence).
//!
//! ```sh
//! cargo run --release --example pipelined_stream
//! ```

use pinpoint::core::BinReport;
use pinpoint::model::BinId;
use pinpoint::scenarios::{steady, Scale};
use std::time::Instant;

fn main() {
    let case = steady::case_study(2015, Scale::Small);
    let (first, last) = (case.start_bin, BinId(case.start_bin.0 + 6));
    // Pre-materialize the window so the comparison below measures pure
    // engine scheduling, not the simulator re-entered between bins.
    let window = case.platform.collect_bins(first, last);
    println!(
        "steady scenario, Small scale: {} bins × ~{} records\n",
        window.len(),
        window[0].1.len()
    );

    let mut runs: Vec<(usize, f64, Vec<BinReport>)> = Vec::new();
    for depth in [1usize, 2] {
        let mut analyzer = case.analyzer();
        let mut reports = Vec::new();
        let t = Instant::now();
        {
            // Depth 1 = strictly serial bins; depth 2 = the two-lane
            // overlap. Same API either way.
            let mut driver = analyzer.pipelined(depth);
            for (bin, records) in &window {
                // At depth 2 this returns the PREVIOUS bin's report: the
                // pushed bin only scatters now and analyzes inside the
                // next push, overlapped with that push's ingestion.
                reports.extend(driver.push_bin(*bin, records));
            }
            reports.extend(driver.finish()); // flush the in-flight bin
        }
        let ms = t.elapsed().as_secs_f64() * 1e3;
        println!(
            "depth {depth}: {:>8.2} ms for {} reports ({} delay + {} forwarding alarms)",
            ms,
            reports.len(),
            reports.iter().map(|r| r.delay_alarms.len()).sum::<usize>(),
            reports
                .iter()
                .map(|r| r.forwarding_alarms.len())
                .sum::<usize>(),
        );
        runs.push((depth, ms, reports));
    }

    // The executor's whole point: depth is a throughput knob, never a
    // semantics knob. Every report byte matches across depths.
    let (serial, overlapped) = (&runs[0].2, &runs[1].2);
    assert_eq!(serial.len(), overlapped.len());
    for (a, b) in serial.iter().zip(overlapped) {
        assert_eq!(a.bin, b.bin, "reports must stay in bin order");
        assert_eq!(a.delay_alarms, b.delay_alarms);
        assert_eq!(a.forwarding_alarms, b.forwarding_alarms);
        assert_eq!(a.link_stats, b.link_stats);
        assert_eq!(a.magnitudes, b.magnitudes);
    }
    println!(
        "\ndepth-2 output is byte-identical to depth-1; overlap speedup {:.2}x \
         (1-core machines overlap nothing — the win appears with real cores, \
         where scatter chunks fill workers idled by skewed shard jobs).",
        runs[0].1 / runs[1].1
    );
}
