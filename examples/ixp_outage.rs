//! §7.3 case study: the AMS-IX outage.
//!
//! A forwarding-only event: the peering fabric blackholes traffic while
//! routes stay up, so there are no RTT samples for the delay method to
//! chew on — the forwarding model catches it as LAN addresses vanishing
//! from next-hop patterns (Fig. 13).
//!
//! ```sh
//! cargo run --release --example ixp_outage
//! ```

use pinpoint::core::forwarding::NextHop;
use pinpoint::scenarios::ixp;
use pinpoint::scenarios::runner::run;
use pinpoint::scenarios::Scale;

fn main() {
    let case = ixp::case_study(2015, Scale::Small);
    let amsix = case.landmarks.amsix_asn;
    let (os, oe) = ixp::outage_window();
    println!("epoch: {}", case.epoch_label);
    println!("ground truth: {amsix} fabric outage during {os} – {oe}\n");

    let mapper = case.mapper.clone();
    let mut analyzer = case.analyzer();
    let mut series: Vec<(u64, f64, f64)> = Vec::new();
    let mut lan_pairs = std::collections::BTreeSet::new();

    run(&case, &mut analyzer, |report| {
        if let Some(m) = report.magnitude(amsix) {
            series.push((report.bin.0, m.forwarding_magnitude, m.delay_magnitude));
        }
        for alarm in &report.forwarding_alarms {
            for (hop, r) in &alarm.responsibilities {
                if let NextHop::Ip(ip) = hop {
                    if *r < -0.05 && mapper.asn_of(*ip) == Some(amsix) {
                        lan_pairs.insert((alarm.router, *ip));
                    }
                }
            }
        }
    });

    println!("AMS-IX ({amsix}) magnitudes (bins where |fwd mag| > 1):");
    println!("{:>5} {:>12} {:>12}", "bin", "fwd mag", "delay mag");
    for (bin, fwd, dly) in &series {
        if fwd.abs() > 1.0 {
            println!("{bin:>5} {fwd:>12.1} {dly:>12.1}");
        }
    }

    let min_fwd = series
        .iter()
        .map(|(_, f, _)| *f)
        .fold(f64::INFINITY, f64::min);
    println!("\ndeepest forwarding magnitude: {min_fwd:.1} (paper: −24 for the real AMS-IX)");
    println!(
        "peering-LAN (router, next-hop) pairs reported unresponsive: {} (paper: 770 at full scale)",
        lan_pairs.len()
    );
}
