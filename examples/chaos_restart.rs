//! Chaos-restart walk-through: checkpoint a live analysis, "crash" it,
//! restore from the bytes on disk, and verify the resumed run is
//! byte-identical to one that never crashed.
//!
//! The crash-safety contract has three layers:
//!
//! 1. `Analyzer::snapshot()` is a deterministic, byte-stable encoding of
//!    the *complete* resumable state (EWMA medians, reference wait
//!    times, open events, interner — everything), with the throughput
//!    knobs normalized out so the same analysis state always produces
//!    the same bytes.
//! 2. `CheckpointStore` wraps those bytes in a length + CRC-32 frame and
//!    writes them atomically (temp file + rename), so a `kill -9`
//!    mid-write can never leave a half-valid checkpoint — on restart the
//!    newest file that verifies wins, corrupt tails are skipped.
//! 3. The daemon's collector rejects any bin at or below the resume
//!    point, so a replaying feed cannot double-count what the snapshot
//!    already folded in.
//!
//! ```sh
//! cargo run --release --example chaos_restart
//! ```

use pinpoint::core::session::AnalysisSession;
use pinpoint::core::{render, Analyzer};
use pinpoint::model::records::TracerouteRecord;
use pinpoint::model::BinId;
use pinpoint::scenarios::{ixp, Scale};
use pinpoint::service::{CheckpointStore, Daemon, ServiceConfig};
use std::collections::BTreeMap;

fn main() {
    // The AMS-IX outage window: bins with real alarms and events, so the
    // byte-comparison below proves more than quiet bins would.
    let mut case = ixp::case_study(7, Scale::Small);
    let (outage_start, outage_end) = ixp::outage_bins();
    case.start_bin = BinId(outage_start - 3);
    case.end_bin = BinId(outage_end + 2);
    let feed: Vec<(BinId, Vec<TracerouteRecord>)> = case
        .platform
        .collect_bins(case.start_bin, case.end_bin)
        .into_iter()
        .collect();
    println!(
        "window: bins [{}, {}) over the AMS-IX outage",
        case.start_bin.0, case.end_bin.0
    );

    // ── The uninterrupted reference ────────────────────────────────────
    let mut reference: BTreeMap<u64, String> = BTreeMap::new();
    let mut analyzer = case.analyzer();
    {
        let mut session = analyzer.session(0);
        for (bin, records) in &feed {
            if let Some(report) = session.push_bin(*bin, records) {
                reference.insert(report.bin.0, render::bin_report(&report).to_string());
            }
        }
        if let Some(report) = session.flush() {
            reference.insert(report.bin.0, render::bin_report(&report).to_string());
        }
    }
    println!(
        "reference: {} bins analyzed without interruption",
        reference.len()
    );

    // ── Act 1: run with periodic checkpoints, then crash ───────────────
    let dir = std::env::temp_dir().join(format!("pinpoint-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let crash_at = case.start_bin.0 + 5;
    let cfg = ServiceConfig {
        checkpoint_every: 2,
        checkpoint_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    // The "crash": the feed just stops mid-window. What's on disk is
    // exactly what a kill -9 would have left — the atomic rename means
    // there is no in-between state to be left in.
    let partial: Vec<_> = feed
        .iter()
        .filter(|(b, _)| b.0 < crash_at)
        .cloned()
        .collect();
    let daemon = Daemon::spawn(cfg, case.analyzer(), partial.into_iter()).expect("daemon spawns");
    daemon.state().wait_done();
    let covered = daemon
        .state()
        .last_checkpoint()
        .expect("a checkpoint landed");
    daemon.join().expect("clean join");
    println!(
        "act 1: crashed after bin {}, newest checkpoint covers bin {covered}",
        crash_at - 1
    );

    // ── Act 2: a fresh process restores from bytes alone ───────────────
    let store = CheckpointStore::new(&dir);
    let (last_bin, snapshot) = store.load_latest().expect("a valid checkpoint survives");
    println!(
        "act 2: restored {} snapshot bytes covering bins ≤ {last_bin}",
        snapshot.len()
    );
    // Snapshots normalize the throughput knobs (threads, chunking,
    // depth, radix) to zero — re-pin them for the new process. They
    // change wall-clock behaviour only, never report bytes.
    let knobs = case.cfg.clone();
    let restored = Analyzer::restore_with(&snapshot, |c| {
        c.threads = knobs.threads;
        c.ingest_chunk_records = knobs.ingest_chunk_records;
        c.pipeline_depth = knobs.pipeline_depth;
        c.radix_min_keys = knobs.radix_min_keys;
    })
    .expect("frame verified, snapshot decodes");

    // Resume: replay the feed from one bin BEFORE the checkpoint — the
    // collector's monotonicity rule rejects the overlap, proving a
    // sloppy replaying feed cannot double-count.
    let cfg = ServiceConfig {
        resume_from: Some(last_bin),
        ..ServiceConfig::default()
    };
    let rest: Vec<_> = feed
        .iter()
        .filter(|(b, _)| b.0 >= last_bin)
        .cloned()
        .collect();
    let daemon = Daemon::spawn(cfg, restored, rest.into_iter()).expect("daemon spawns");
    daemon.state().wait_done();
    println!(
        "act 2: resumed bins {:?}, rejected {} replayed bin(s)",
        daemon.state().bin_ids(),
        daemon.state().feed_rejected()
    );

    // ── The verdict: byte equality with the run that never crashed ─────
    let mut checked = 0usize;
    for bin in daemon.state().bin_ids() {
        let resumed = daemon.state().report(bin).expect("resumed bin cached");
        let want = reference.get(&bin).expect("reference bin");
        assert_eq!(resumed.as_str(), want, "bin {bin} diverged after resume");
        checked += 1;
    }
    daemon.join().expect("clean join");
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "verdict: {checked}/{checked} post-crash reports byte-identical to the uninterrupted run"
    );
}
