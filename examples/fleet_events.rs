//! Fleet event extraction walk-through: the §7.3 AMS-IX outage replayed
//! through three measurement streams, collapsed into ONE fleet event.
//!
//! Each stream's alarms are a partial view of the same incident; the
//! empathy extractor clusters every bin's simultaneous alarms over the
//! shared-element relation (alarms touching the same interface or AS
//! are empathic), blames the most-shared element, and tracks the event
//! lifecycle Open→Updated→Closed incrementally — the deltas printed
//! here are the same channel `pinpointd` serves at `/events`.
//!
//! ```sh
//! cargo run --release --example fleet_events
//! ```

use pinpoint::core::{DetectorConfig, EventTable};
use pinpoint::model::BinId;
use pinpoint::scenarios::{ixp, multi, Scale};

fn main() {
    let mut case = multi::case_study(2015, Scale::Small);
    case.cfg = DetectorConfig::fast_test();
    let amsix = case.landmarks.amsix_asn;
    let (outage_start, outage_end) = ixp::outage_bins();

    println!("fleet streams:");
    for spec in &case.streams {
        println!("  {:<14} {} measurements", spec.label, spec.msm_ids.len());
    }
    println!("\nground truth: {amsix} fabric outage in bins {outage_start}..{outage_end}");
    println!(
        "event knobs: threshold {}, gap {} bin(s), min shared elements {}\n",
        case.cfg.event_threshold, case.cfg.event_gap_bins, case.cfg.empathy_min_shared
    );

    let mut router = case.router();
    let mut table = EventTable::new();
    for bin in outage_start - 4..outage_end + 2 {
        let feeds = case.collect_bin(BinId(bin));
        let report = router.process_bin(BinId(bin), &feeds);
        // The incremental channel: every event opened, updated, or
        // closed by this bin, in ascending id.
        for delta in &report.events {
            println!("bin {bin:>3}: {delta}");
        }
        table.absorb(&report.events);
    }

    println!("\n=== final fleet event table (ranked by severity) ===");
    for event in table.ranked() {
        println!("  {event}");
        println!(
            "    blamed {} ({} member alarms), ASes {:?}, streams {:?}",
            event.blamed,
            event.blamed_shares,
            event.asns.iter().map(|a| a.0).collect::<Vec<_>>(),
            event.streams
        );
    }
    assert_eq!(
        table.len(),
        1,
        "the outage must collapse into a single fleet event"
    );
    println!(
        "\n{} event(s) total, {} still open — the three partial views \
         merged into one incident at the IXP",
        table.len(),
        table.open_count()
    );
}
