//! Interchange-format integration: platform output survives a JSON round
//! trip and the detector produces identical results from the re-imported
//! records — what a user replaying archived Atlas data relies on.

use pinpoint::core::aggregate::AsMapper;
use pinpoint::core::{Analyzer, DetectorConfig};
use pinpoint::model::json::{parse, record_from_json, record_to_json};
use pinpoint::model::BinId;
use pinpoint::scenarios::{steady, Scale};

#[test]
fn platform_records_round_trip_through_json() {
    let case = steady::case_study(5, Scale::Small);
    let records = case.platform.collect_bin(BinId(0));
    assert!(!records.is_empty());
    for rec in &records {
        let doc = record_to_json(rec).to_string();
        let back = record_from_json(&parse(&doc).expect("parse")).expect("decode");
        assert_eq!(*rec, back);
    }
}

#[test]
fn detector_results_identical_after_round_trip() {
    let case = steady::case_study(5, Scale::Small);
    let mapper: AsMapper = case.mapper.clone();

    let mut direct = Analyzer::new(DetectorConfig::fast_test(), mapper.clone());
    let mut replayed = Analyzer::new(DetectorConfig::fast_test(), mapper);

    for bin in 0..4u64 {
        let records = case.platform.collect_bin(BinId(bin));
        let through_json: Vec<_> = records
            .iter()
            .map(|r| record_from_json(&parse(&record_to_json(r).to_string()).unwrap()).unwrap())
            .collect();
        let a = direct.process_bin(BinId(bin), &records);
        let b = replayed.process_bin(BinId(bin), &through_json);
        assert_eq!(
            a.delay_alarms, b.delay_alarms,
            "bin {bin} delay alarms differ"
        );
        assert_eq!(
            a.forwarding_alarms, b.forwarding_alarms,
            "bin {bin} forwarding alarms differ"
        );
        assert_eq!(a.magnitudes, b.magnitudes, "bin {bin} magnitudes differ");
    }
}

#[test]
fn json_lines_export_import() {
    // The practical archive format: one record per line.
    let case = steady::case_study(5, Scale::Small);
    let records = case.platform.collect_bin(BinId(1));
    let blob: String = records
        .iter()
        .map(|r| record_to_json(r).to_string() + "\n")
        .collect();
    let reread: Vec<_> = blob
        .lines()
        .map(|line| record_from_json(&parse(line).unwrap()).unwrap())
        .collect();
    assert_eq!(records, reread);
}
