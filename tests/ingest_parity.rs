//! Ingestion-parity tests: the chunked, parallel, epoch-interned scatter
//! front-end must be *byte-for-byte* equivalent to the single-threaded
//! nested-map reference path — for any chunk size, any thread count, any
//! feed slicing, and through intern-table compaction under key churn.
//!
//! The CI matrix re-runs this file with `PINPOINT_THREADS` ∈ {1, 2, 4, 8}
//! × `PINPOINT_CHUNK` ∈ {3 records, default} on a multi-core runner; the
//! tests below additionally sweep chunk sizes internally, so every matrix
//! point proves parity for several chunkings.

mod common;

use common::{assert_reports_identical, parity_config};
use pinpoint::core::aggregate::AsMapper;
use pinpoint::core::{Analyzer, DetectorConfig};
use pinpoint::model::records::{Hop, Reply, TracerouteRecord};
use pinpoint::model::{Asn, BinId, MeasurementId, ProbeId, SimTime};
use pinpoint::scenarios::{steady, Scale};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn mapper() -> AsMapper {
    AsMapper::from_prefixes([
        ("10.0.0.0/8".parse().unwrap(), Asn(64500)),
        ("198.51.100.0/24".parse().unwrap(), Asn(64501)),
    ])
}

/// Decode a generated spec into a traceroute record that feeds BOTH
/// arenas: responsive hops with varying RTT multisets produce
/// differential-RTT rows, successor replies produce pattern rows. Reply
/// code 0 is a timeout; other codes map into a tiny address space so
/// collisions (shared routers, repeated addresses, next hop == router)
/// and probe-ASN conflicts are the common case, not the exception.
fn record_from_spec(probe: u32, asn: u32, dst: u32, hops: &[Vec<u32>]) -> TracerouteRecord {
    TracerouteRecord {
        msm_id: MeasurementId(1),
        probe_id: ProbeId(probe % 5),
        probe_asn: Asn(64000 + (asn % 4)),
        dst: Ipv4Addr::new(198, 51, 100, (dst % 3) as u8),
        timestamp: SimTime(0),
        paris_id: 0,
        hops: hops
            .iter()
            .enumerate()
            .map(|(ttl, replies)| {
                Hop::new(
                    ttl as u8 + 1,
                    replies
                        .iter()
                        .map(|&code| {
                            if code == 0 {
                                Reply::TIMEOUT
                            } else {
                                Reply::new(
                                    Ipv4Addr::new(10, 0, (code % 3) as u8, (code % 7) as u8),
                                    f64::from(code % 11) * 0.7 + f64::from(ttl as u32) * 0.1,
                                )
                            }
                        })
                        .collect(),
                )
            })
            .collect(),
        destination_reached: true,
    }
}

/// An analyzer on the matrix-selected thread count with an explicit
/// scatter chunk size.
fn chunked_analyzer(chunk_records: usize) -> Analyzer {
    let mut cfg = parity_config();
    cfg.ingest_chunk_records = chunk_records;
    Analyzer::new(cfg, mapper())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chunked parallel scatter == monolithic scatter == the nested-map
    /// reference path, for both arenas at once, on arbitrary record sets
    /// — bin over bin, so the persistent intern epoch (ids assigned in
    /// earlier bins, per-bin probe-ASN re-pinning) is exercised too.
    /// Chunk size 1 puts every record in its own scatter job; the
    /// `usize::MAX` entry is the monolithic single-chunk scatter.
    #[test]
    fn prop_chunked_scatter_matches_monolithic_and_reference(
        probes in prop::collection::vec(0u32..7, 1..9),
        asns in prop::collection::vec(0u32..5, 1..9),
        dsts in prop::collection::vec(0u32..4, 1..9),
        hop_specs in prop::collection::vec(
            prop::collection::vec(prop::collection::vec(0u32..9, 0..5), 0..5),
            1..9,
        ),
    ) {
        let records: Vec<TracerouteRecord> = hop_specs
            .iter()
            .enumerate()
            .map(|(i, hops)| {
                record_from_spec(
                    probes[i % probes.len()],
                    asns[i % asns.len()],
                    dsts[i % dsts.len()],
                    hops,
                )
            })
            .collect();
        let chunk_sizes = [1usize, 2, 3, usize::MAX];
        let mut sequential = Analyzer::new(DetectorConfig::fast_test(), mapper());
        let mut engines: Vec<Analyzer> =
            chunk_sizes.iter().map(|&c| chunked_analyzer(c)).collect();
        for bin in 0..3u64 {
            let want = sequential.process_bin_sequential(BinId(bin), &records);
            for (engine, &chunk) in engines.iter_mut().zip(&chunk_sizes) {
                let got = engine.process_bin(BinId(bin), &records);
                assert_reports_identical(&got, &want, &format!("bin {bin} chunk {chunk}"));
            }
        }
        // Steady state: bins 2+ replayed the same keys — zero insertions.
        for (engine, &chunk) in engines.iter_mut().zip(&chunk_sizes) {
            prop_assert_eq!(engine.ingest_stats().bin_insertions, 0, "chunk {}", chunk);
        }
    }

    /// Incremental ingestion — the bin fed as arbitrary successive slices
    /// through `begin_bin` / `ingest` / `finish_bin` — produces the exact
    /// report of a batch `process_bin` over the concatenation.
    #[test]
    fn prop_incremental_ingest_matches_batch(
        cut_a in 0u32..12,
        cut_b in 0u32..12,
        hop_specs in prop::collection::vec(
            prop::collection::vec(prop::collection::vec(0u32..9, 0..5), 0..5),
            1..12,
        ),
    ) {
        let records: Vec<TracerouteRecord> = hop_specs
            .iter()
            .enumerate()
            .map(|(i, hops)| record_from_spec(i as u32, i as u32 / 2, i as u32 / 3, hops))
            .collect();
        let mut cuts = [
            (cut_a as usize) % (records.len() + 1),
            (cut_b as usize) % (records.len() + 1),
        ];
        cuts.sort_unstable();
        let mut batch = chunked_analyzer(2);
        let mut streamed = chunked_analyzer(2);
        for bin in 0..2u64 {
            let want = batch.process_bin(BinId(bin), &records);
            streamed.begin_bin(BinId(bin));
            streamed.ingest(&records[..cuts[0]]);
            streamed.ingest(&records[cuts[0]..cuts[1]]);
            streamed.ingest(&records[cuts[1]..]);
            let got = streamed.finish_bin();
            assert_reports_identical(&got, &want, &format!("bin {bin} cuts {cuts:?}"));
        }
    }
}

/// The full thread-count × chunk-size cross on a faithful simulator
/// stream: every point must reproduce the sequential reference bytes.
/// 3 and 5 threads don't divide the 32-shard count (uneven round-robin
/// bundles); chunk 1 maximizes chunk count, chunk 7 leaves a ragged tail,
/// chunk 0 is the auto default (one chunk for these small bins — the
/// monolithic scatter).
#[test]
fn parity_across_thread_and_chunk_cross() {
    let case = steady::case_study(11, Scale::Small);
    let bins: Vec<Vec<TracerouteRecord>> = (0..3)
        .map(|b| case.platform.collect_bin(BinId(b)))
        .collect();
    let mut sequential = Analyzer::new(DetectorConfig::fast_test(), case.mapper.clone());
    let want: Vec<_> = bins
        .iter()
        .enumerate()
        .map(|(b, records)| sequential.process_bin_sequential(BinId(b as u64), records))
        .collect();
    for threads in [1usize, 2, 3, 4, 5, 8] {
        for chunk in [1usize, 7, 64, 0] {
            let mut cfg = DetectorConfig::fast_test();
            cfg.threads = threads;
            cfg.ingest_chunk_records = chunk;
            let mut engine = Analyzer::new(cfg, case.mapper.clone());
            for (b, records) in bins.iter().enumerate() {
                let got = engine.process_bin(BinId(b as u64), records);
                assert_reports_identical(
                    &got,
                    &want[b],
                    &format!("threads={threads} chunk={chunk} bin={b}"),
                );
            }
        }
    }
}

/// Acceptance gate for the interning epoch: a steady-state bin — every
/// link, probe, pattern, and next hop already interned by earlier bins —
/// performs ZERO intern-table insertions, while first-contact bins
/// insert plenty.
#[test]
fn steady_state_bins_perform_zero_intern_insertions() {
    let case = steady::case_study(7, Scale::Small);
    let records = case.platform.collect_bin(BinId(0));
    let mut analyzer = Analyzer::new(parity_config(), case.mapper.clone());
    analyzer.process_bin(BinId(0), &records);
    let first = analyzer.ingest_stats();
    assert!(
        first.bin_insertions > 100,
        "first bin should intern the world: {first:?}"
    );
    for bin in 1..4u64 {
        analyzer.process_bin(BinId(bin), &records);
        let stats = analyzer.ingest_stats();
        assert_eq!(
            stats.bin_insertions, 0,
            "bin {bin} re-interned known keys: {stats:?}"
        );
        assert_eq!(stats.insertions, first.insertions, "bin {bin}");
    }
    assert_eq!(analyzer.ingest_stats().interned as u64, first.insertions);
}

/// Intern-epoch lifecycle under key churn: every bin retires one cohort
/// of links/patterns and introduces a new one. The tables must stay
/// bounded (compaction on the `reference_expiry_bins` clock), evictions
/// must actually happen, and — the real contract — compaction must be
/// byte-for-byte invisible in the reports, proven against the sequential
/// reference path every single bin.
#[test]
fn intern_tables_stay_bounded_under_churn_and_compaction_is_invisible() {
    // Three probes in distinct ASes traverse a per-cohort link towards a
    // per-cohort destination; cohorts rotate every bin.
    fn churn_bin(bin: u64) -> Vec<TracerouteRecord> {
        let cohort = (bin % 50) as u8;
        let near = Ipv4Addr::new(10, 1, cohort, 1);
        let far = Ipv4Addr::new(10, 1, cohort, 2);
        let dst = Ipv4Addr::new(198, 51, 100, cohort);
        let mut out = Vec::new();
        for (probe, asn) in [(1u32, 100u32), (2, 200), (3, 300)] {
            out.push(TracerouteRecord {
                msm_id: MeasurementId(1),
                probe_id: ProbeId(1000 + bin as u32 * 10 + probe),
                probe_asn: Asn(asn),
                dst,
                timestamp: SimTime(bin * 3600),
                paris_id: 0,
                hops: vec![
                    Hop::new(1, vec![Reply::new(near, 1.0 + f64::from(probe) * 0.1); 3]),
                    Hop::new(2, vec![Reply::new(far, 3.0 + f64::from(probe) * 0.1); 3]),
                ],
                destination_reached: true,
            });
        }
        out
    }

    let mut cfg = parity_config();
    cfg.ingest_chunk_records = 2; // several chunks per bin
    cfg.reference_expiry_bins = 3;
    let mut engine = Analyzer::new(cfg.clone(), mapper());
    let mut seq_cfg = DetectorConfig::fast_test();
    seq_cfg.reference_expiry_bins = 3;
    let mut sequential = Analyzer::new(seq_cfg, mapper());

    let mut peak_interned = 0usize;
    for bin in 0..40u64 {
        let records = churn_bin(bin);
        let got = engine.process_bin(BinId(bin), &records);
        let want = sequential.process_bin_sequential(BinId(bin), &records);
        assert_reports_identical(&got, &want, &format!("churn bin {bin}"));
        peak_interned = peak_interned.max(engine.ingest_stats().interned);
    }
    let stats = engine.ingest_stats();
    // Every bin interns a fresh cohort (1 link key is 1 entry in the link
    // table; plus probes, patterns, hops) — without compaction the tables
    // would hold ~40 cohorts. With expiry 3, at most ~expiry+2 cohorts
    // are ever live at once.
    assert!(
        stats.evictions > 0,
        "churn never triggered compaction: {stats:?}"
    );
    let one_cohort = 2 /* links */ + 3 /* probes */ + 2 /* patterns */ + 3 /* hops, approx */;
    let bound = one_cohort * 8;
    assert!(
        peak_interned < bound,
        "intern tables grew with the epoch: peak {peak_interned} >= bound {bound} ({stats:?})"
    );
    assert!(
        stats.insertions > stats.interned as u64,
        "churn should have inserted far more keys than stay live: {stats:?}"
    );
}

/// `PINPOINT_THREADS`/`PINPOINT_CHUNK` misconfiguration must fail with an
/// actionable message, not a bare parse panic (satellite regression).
#[test]
fn matrix_env_misconfiguration_panics_with_contract() {
    for (name, value) in [("PINPOINT_THREADS", "many"), ("PINPOINT_CHUNK", "1k")] {
        let result =
            std::panic::catch_unwind(|| common::parse_matrix_var(name, value, "thread count"));
        let err = result.expect_err("garbage matrix value must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(
            msg.contains(name) && msg.contains(value) && msg.contains("cargo test"),
            "panic message not actionable: {msg:?}"
        );
    }
    // Valid values parse, including surrounding whitespace.
    assert_eq!(common::parse_matrix_var("PINPOINT_THREADS", " 4 ", "x"), 4);
    assert_eq!(common::parse_matrix_var("PINPOINT_CHUNK", "0", "x"), 0);
}

/// `PINPOINT_RADIX` speaks modes as well as numbers; both the word map
/// and the misconfiguration contract must hold.
#[test]
fn radix_env_modes_parse_and_garbage_panics_with_contract() {
    assert_eq!(common::parse_radix_mode("PINPOINT_RADIX", "on"), 1);
    assert_eq!(
        common::parse_radix_mode("PINPOINT_RADIX", "off"),
        usize::MAX
    );
    assert_eq!(common::parse_radix_mode("PINPOINT_RADIX", "auto"), 0);
    assert_eq!(common::parse_radix_mode("PINPOINT_RADIX", ""), 0);
    assert_eq!(common::parse_radix_mode("PINPOINT_RADIX", " 128 "), 128);
    for garbage in ["fast", "On", "-1", "yes"] {
        let result =
            std::panic::catch_unwind(|| common::parse_radix_mode("PINPOINT_RADIX", garbage));
        let err = result.expect_err("garbage radix mode must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(
            msg.contains("PINPOINT_RADIX")
                && msg.contains(garbage)
                && msg.contains("`off`")
                && msg.contains("cargo test"),
            "panic message not actionable: {msg:?}"
        );
    }
}
