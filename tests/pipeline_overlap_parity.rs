//! Cross-bin pipelined-executor parity tests: the depth-2 pipeline —
//! bin *n*'s delay + forwarding shard jobs overlapped with bin *n+1*'s
//! scatter chunks on one worker herd — must be *byte-for-byte* equivalent
//! to the serial schedule for any thread count, any scatter chunk size,
//! and any depth, for a solo [`Analyzer`] and for a multi-stream
//! [`StreamRouter`] fleet alike. The sweeps here cover alarm-firing event
//! bins (the AMS-IX outage; a delay surge; a route flip), empty bins, and
//! an epoch-compaction bin mid-stream (the drain fence).
//!
//! Like the other parity suites, the CI matrix re-runs this file under
//! `PINPOINT_THREADS` × `PINPOINT_CHUNK` × `PINPOINT_PIPELINE`; the tests
//! additionally sweep depth {1, 2} (and the env-selected depth via
//! `parity_config`) internally, so every matrix point proves several
//! schedules.

mod common;

use common::{assert_reports_identical, parity_config};
use pinpoint::core::aggregate::AsMapper;
use pinpoint::core::{Analyzer, BinReport, DetectorConfig, FleetReport, StreamRouter};
use pinpoint::model::records::{Hop, Reply, TracerouteRecord};
use pinpoint::model::{Asn, BinId, MeasurementId, ProbeId, SimTime};
use pinpoint::scenarios::{ixp, Scale};
use std::net::Ipv4Addr;

fn mapper() -> AsMapper {
    AsMapper::from_prefixes([
        ("10.0.0.0/8".parse().unwrap(), Asn(64500)),
        ("198.51.0.0/16".parse().unwrap(), Asn(64501)),
    ])
}

/// Drive a bin stream through the pipelined executor and collect the
/// in-order reports.
fn drive(
    analyzer: &mut Analyzer,
    depth: usize,
    bins: &[(BinId, Vec<TracerouteRecord>)],
) -> Vec<BinReport> {
    let mut out = Vec::new();
    let mut driver = analyzer.pipelined(depth);
    for (bin, records) in bins {
        out.extend(driver.push_bin(*bin, records));
    }
    out.extend(driver.finish());
    out
}

/// Demand two report streams be byte-for-byte identical, bin by bin.
fn assert_streams_identical(got: &[BinReport], want: &[BinReport], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: report count");
    for (a, b) in got.iter().zip(want) {
        assert_reports_identical(a, b, &format!("{ctx} bin {:?}", a.bin));
    }
}

/// Three probes in three ASes traverse one link with a controllable
/// delay; `surge` fires a delay alarm once references are warm.
fn delay_records(bin: u64, surge: bool) -> Vec<TracerouteRecord> {
    let (near, far, dst) = (
        Ipv4Addr::new(10, 1, 0, 1),
        Ipv4Addr::new(10, 1, 0, 2),
        Ipv4Addr::new(198, 51, 100, 1),
    );
    let link_delay = if surge { 34.0 } else { 2.0 };
    let mut out = Vec::new();
    for (probe, asn, eps) in [(1u32, 100u32, 0.4), (2, 200, -0.8), (3, 300, 1.3)] {
        for shot in 0..2u64 {
            let base = 10.0 + eps + 0.05 * shot as f64;
            out.push(TracerouteRecord {
                msm_id: MeasurementId(1),
                probe_id: ProbeId(probe),
                probe_asn: Asn(asn),
                dst,
                timestamp: SimTime(bin * 3600 + shot * 1800),
                paris_id: 0,
                hops: vec![
                    Hop::new(
                        1,
                        (0..3)
                            .map(|k| Reply::new(near, base + 0.01 * f64::from(k)))
                            .collect(),
                    ),
                    Hop::new(
                        2,
                        (0..3)
                            .map(|k| Reply::new(far, base + link_delay + 0.01 * f64::from(k)))
                            .collect(),
                    ),
                    Hop::new(3, vec![Reply::new(dst, base + link_delay + 2.0); 3]),
                ],
                destination_reached: true,
            });
        }
    }
    out
}

/// One churn traceroute over a link (and router/destination pair) unique
/// to `bin` — it interns fresh keys every bin and lets the old ones
/// expire, forcing epoch-compaction sweeps mid-stream.
fn churn_records(bin: u64) -> Vec<TracerouteRecord> {
    let near = Ipv4Addr::new(10, 9, (bin % 250) as u8, 1);
    let far = Ipv4Addr::new(10, 9, (bin % 250) as u8, 2);
    vec![TracerouteRecord {
        msm_id: MeasurementId(9),
        probe_id: ProbeId(9_000 + bin as u32),
        probe_asn: Asn(64900),
        dst: Ipv4Addr::new(198, 51, 200, (bin % 250) as u8),
        timestamp: SimTime(bin * 3600 + 7),
        paris_id: 0,
        hops: vec![
            Hop::new(1, vec![Reply::new(near, 3.0); 3]),
            Hop::new(2, vec![Reply::new(far, 5.0); 3]),
        ],
        destination_reached: true,
    }]
}

/// A route flip through a per-stream router (fires a forwarding alarm).
fn forwarding_records(stream: u8, bin: u64, flipped: bool) -> Vec<TracerouteRecord> {
    let router = Ipv4Addr::new(10, 2, stream, 1);
    let next = if flipped {
        Ipv4Addr::new(10, 2, stream, 99)
    } else {
        Ipv4Addr::new(10, 2, stream, 2)
    };
    (1u32..=3)
        .map(|probe| TracerouteRecord {
            msm_id: MeasurementId(100 + u32::from(stream)),
            probe_id: ProbeId(probe),
            probe_asn: Asn(64000 + probe),
            dst: Ipv4Addr::new(198, 51, 210, stream + 1),
            timestamp: SimTime(bin * 3600 + u64::from(probe) * 60),
            paris_id: 0,
            hops: vec![
                Hop::new(1, vec![Reply::new(router, 1.0); 4]),
                Hop::new(2, vec![Reply::new(next, 2.0); 4]),
            ],
            destination_reached: true,
        })
        .collect()
}

/// Full-pipeline parity through the AMS-IX outage: the scenario where
/// real forwarding alarms fire. The pipelined executor at every depth —
/// including the env-selected one — must reproduce the sequential
/// reference path byte for byte, report by report, in bin order.
#[test]
fn pipelined_analyzer_matches_serial_through_ixp_outage() {
    let case = ixp::case_study(7, Scale::Small);
    let (outage_start, outage_end) = ixp::outage_bins();
    let bins: Vec<(BinId, Vec<TracerouteRecord>)> = (outage_start - 3..outage_end + 2)
        .map(|b| (BinId(b), case.platform.collect_bin(BinId(b))))
        .collect();

    let mut sequential = Analyzer::new(DetectorConfig::fast_test(), case.mapper.clone());
    let want: Vec<BinReport> = bins
        .iter()
        .map(|(bin, records)| sequential.process_bin_sequential(*bin, records))
        .collect();
    let fired: usize = want.iter().map(|r| r.forwarding_alarms.len()).sum();
    assert!(
        fired > 0,
        "the outage fired no alarms — parity would only be proven on quiet bins"
    );

    // Depth 0 resolves through the env-selected cfg.pipeline_depth, so
    // the CI PINPOINT_PIPELINE axis lands exactly here.
    for depth in [0usize, 1, 2] {
        let mut pipelined = Analyzer::new(parity_config(), case.mapper.clone());
        let got = drive(&mut pipelined, depth, &bins);
        assert_streams_identical(&got, &want, &format!("ixp depth {depth}"));
        assert_eq!(
            pipelined.tracked_links(),
            sequential.tracked_links(),
            "depth {depth}: tracked links diverged"
        );
        assert_eq!(
            pipelined.tracked_patterns(),
            sequential.tracked_patterns(),
            "depth {depth}: tracked patterns diverged"
        );
    }
}

/// The bin schedule of the churn sweep: steady delay traffic + per-bin
/// unique churn keys, an empty bin, a delay surge, and enough quiet bins
/// after the churn stops for compaction sweeps to fire mid-stream.
fn churn_schedule() -> Vec<(BinId, Vec<TracerouteRecord>)> {
    (0..14u64)
        .map(|b| {
            let mut records = if b == 5 {
                Vec::new() // an empty bin mid-stream is a valid bin
            } else {
                delay_records(b, b == 11)
            };
            if b < 4 {
                records.extend(churn_records(b));
            }
            (BinId(b), records)
        })
        .collect()
}

/// Epoch-compaction bin mid-stream: with a 2-bin expiry the churn keys of
/// bins 0–3 die while the stream is still flowing, so the depth-2
/// pipeline must hit its drain-sweep-refill fence — and stay
/// byte-identical to both serial paths, including the delay surge fired
/// *after* the sweeps.
#[test]
fn pipelined_compaction_fence_mid_stream_parity() {
    let mut cfg = parity_config();
    cfg.reference_expiry_bins = 2;
    let mut sequential_cfg = DetectorConfig::fast_test();
    sequential_cfg.reference_expiry_bins = 2;
    let bins = churn_schedule();

    let mut sequential = Analyzer::new(sequential_cfg, mapper());
    let want: Vec<BinReport> = bins
        .iter()
        .map(|(bin, records)| sequential.process_bin_sequential(*bin, records))
        .collect();
    assert!(
        want.iter().any(|r| !r.delay_alarms.is_empty()),
        "the surge fired no delay alarm through the fence schedule"
    );

    for depth in [1usize, 2] {
        let mut pipelined = Analyzer::new(cfg.clone(), mapper());
        let got = drive(&mut pipelined, depth, &bins);
        assert_streams_identical(&got, &want, &format!("churn depth {depth}"));
        let stats = pipelined.ingest_stats();
        assert!(
            stats.evictions > 0,
            "depth {depth}: no compaction sweep ran — the fence was never exercised"
        );
        assert_eq!(
            pipelined.tracked_links(),
            sequential.tracked_links(),
            "depth {depth}"
        );
    }

    // The two engine schedules must also agree on the eviction sets —
    // the fence defers a sweep to a drained gap (an overdue key's
    // eviction may land one bin later than serial), but the same keys
    // must die, so with quiet bins at the end of the schedule the
    // cumulative epoch counters converge to equality.
    let mut serial_engine = Analyzer::new(cfg.clone(), mapper());
    for (bin, records) in &bins {
        serial_engine.process_bin(*bin, records);
    }
    let mut overlapped = Analyzer::new(cfg, mapper());
    drive(&mut overlapped, 2, &bins);
    assert_eq!(
        overlapped.ingest_stats(),
        serial_engine.ingest_stats(),
        "intern-epoch counters diverged between schedules"
    );
}

/// Demand two fleet reports be byte-for-byte identical.
fn assert_fleets_identical(a: &FleetReport, b: &FleetReport, ctx: &str) {
    assert_eq!(a.bin, b.bin, "{ctx}: bin");
    assert_eq!(a.streams.len(), b.streams.len(), "{ctx}: stream count");
    for (i, (ra, rb)) in a.streams.iter().zip(&b.streams).enumerate() {
        assert_reports_identical(ra, rb, &format!("{ctx} stream {i}"));
    }
    assert_eq!(a.magnitudes, b.magnitudes, "{ctx}: merged magnitudes");
}

/// Three-stream fleet feeds: a delay stream, a forwarding stream, and a
/// churn stream whose keys rotate every bin. `bin` 9 is the event bin
/// (delay surge + route flip).
fn fleet_feeds(bin: u64) -> Vec<Vec<TracerouteRecord>> {
    vec![
        delay_records(bin, bin == 9),
        forwarding_records(1, bin, bin == 9),
        if bin == 6 {
            Vec::new()
        } else if bin < 4 {
            churn_records(bin)
        } else {
            delay_records(bin, false)
        },
    ]
}

fn fleet(cfg: &DetectorConfig) -> StreamRouter {
    let mut router = StreamRouter::with_magnitude_window(cfg.magnitude_window_bins);
    for label in ["delay-stream", "forwarding-stream", "churn-stream"] {
        router.add_stream(label, Analyzer::new(cfg.clone(), mapper()));
    }
    router.set_threads(cfg.threads);
    router.register_ases([Asn(64500)]);
    router
}

/// Fleet parity across depths: a 3-stream [`StreamRouter`] driven through
/// the fleet pipelined executor — two-lane waves carrying every stream's
/// shard jobs AND every stream's next-bin scatter chunks — must match the
/// sequential fleet path byte for byte through an alarm-firing event bin,
/// an empty bin, and a churn stream whose compaction forces the fleet
/// drain fence.
#[test]
fn pipelined_fleet_matches_serial() {
    let mut cfg = parity_config();
    cfg.reference_expiry_bins = 3;
    let mut sequential_cfg = DetectorConfig::fast_test();
    sequential_cfg.reference_expiry_bins = 3;
    let bins: Vec<(BinId, Vec<Vec<TracerouteRecord>>)> =
        (0..12u64).map(|b| (BinId(b), fleet_feeds(b))).collect();

    let mut sequential = fleet(&sequential_cfg);
    let want: Vec<FleetReport> = bins
        .iter()
        .map(|(bin, feeds)| sequential.process_bin_sequential(*bin, feeds))
        .collect();
    assert!(
        want.iter().any(|r| r.delay_alarms() > 0),
        "no delay alarm in the fleet schedule"
    );
    assert!(
        want.iter().any(|r| r.forwarding_alarms() > 0),
        "no forwarding alarm in the fleet schedule"
    );

    // Depth 0 resolves through the streams' env-selected
    // cfg.pipeline_depth (parity_config set it from PINPOINT_PIPELINE),
    // so the CI axis reaches the fleet path through the documented knob.
    for depth in [0usize, 1, 2] {
        let mut router = fleet(&cfg);
        let mut got = Vec::new();
        {
            let mut driver = router.pipelined(depth);
            for (bin, feeds) in &bins {
                got.extend(driver.push_bin(*bin, feeds));
            }
            got.extend(driver.finish());
        }
        assert_eq!(got.len(), want.len(), "depth {depth}: report count");
        for (a, b) in got.iter().zip(&want) {
            assert_fleets_identical(a, b, &format!("fleet depth {depth} bin {:?}", a.bin));
        }
        assert_eq!(router.tracked_links(), sequential.tracked_links());
        assert_eq!(router.tracked_patterns(), sequential.tracked_patterns());
        if depth == 2 {
            assert!(
                router.ingest_stats().evictions > 0,
                "the fleet drain fence was never exercised"
            );
        }
    }
}

/// The pipelined executor must stay byte-identical across *local* thread
/// and chunk sweeps too — including counts that don't divide the shard
/// count and a pathological 3-record chunk — so parity holds even on
/// matrix points the CI grid never visits.
#[test]
fn pipelined_parity_across_local_thread_and_chunk_sweep() {
    let bins = churn_schedule();
    let mut sequential_cfg = DetectorConfig::fast_test();
    sequential_cfg.reference_expiry_bins = 2;
    let mut sequential = Analyzer::new(sequential_cfg, mapper());
    let want: Vec<BinReport> = bins
        .iter()
        .map(|(bin, records)| sequential.process_bin_sequential(*bin, records))
        .collect();

    for threads in [1usize, 3, 5] {
        for chunk in [0usize, 3] {
            for depth in [1usize, 2] {
                let mut cfg = DetectorConfig::fast_test();
                cfg.reference_expiry_bins = 2;
                cfg.threads = threads;
                cfg.ingest_chunk_records = chunk;
                let mut pipelined = Analyzer::new(cfg, mapper());
                let got = drive(&mut pipelined, depth, &bins);
                assert_streams_identical(
                    &got,
                    &want,
                    &format!("threads {threads} chunk {chunk} depth {depth}"),
                );
            }
        }
    }
}

/// The increasing-order contract holds at every depth — including depth
/// 1, where no bin is ever pending, and after a `finish()` drain: a
/// regressed bin clock must panic, not silently rewind the references.
#[test]
#[should_panic(expected = "increasing order")]
fn regressed_bin_clock_panics_even_at_depth_1() {
    let mut analyzer = Analyzer::new(DetectorConfig::fast_test(), mapper());
    let mut driver = analyzer.pipelined(1);
    driver.push_bin(BinId(5), &delay_records(5, false));
    driver.push_bin(BinId(3), &delay_records(3, false));
}

/// Same contract across a `finish()` flush at depth 2 (`pending` is
/// empty again, but the clock must not rewind).
#[test]
#[should_panic(expected = "increasing order")]
fn regressed_bin_clock_panics_after_finish() {
    let mut analyzer = Analyzer::new(DetectorConfig::fast_test(), mapper());
    let mut driver = analyzer.pipelined(2);
    driver.push_bin(BinId(5), &delay_records(5, false));
    driver.finish();
    driver.push_bin(BinId(4), &delay_records(4, false));
}

/// The depth knob's contract: unsupported depths must fail loudly in the
/// harness (the engine would silently clamp them), and supported ones
/// pass through.
#[test]
fn pipeline_depth_validation_is_actionable() {
    for ok in [0usize, 1, 2] {
        assert_eq!(common::check_pipeline_depth("PINPOINT_PIPELINE", ok), ok);
    }
    let err = std::panic::catch_unwind(|| common::check_pipeline_depth("PINPOINT_PIPELINE", 3))
        .expect_err("depth 3 must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("PINPOINT_PIPELINE") && msg.contains("deeper pipelines do not exist"),
        "panic message not actionable: {msg}"
    );
}
