//! Forwarding-engine parity tests: the sharded pattern engine must be
//! *byte-for-byte* equivalent to the single-threaded nested-map reference
//! path — same alarms in the same order, same tracked references, same
//! evictions — on quiet bins, through a route change that actually fires
//! alarms, through the AMS-IX outage scenario, and (by property) on
//! arbitrary record sets.
//!
//! Like `engine_parity.rs`, the CI thread matrix re-runs this file with
//! `PINPOINT_THREADS` ∈ {1, 2, 4, 8} on a multi-core runner.

mod common;

use common::{assert_reports_identical, parity_config};
use pinpoint::core::forwarding::pattern::{collect_patterns, collect_patterns_sharded};
use pinpoint::core::{Analyzer, DetectorConfig, ForwardingDetector};
use pinpoint::model::records::{Hop, Reply, TracerouteRecord};
use pinpoint::model::{Asn, BinId, MeasurementId, ProbeId, SimTime};
use pinpoint::scenarios::{ixp, Scale};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn ip(s: &str) -> Ipv4Addr {
    s.parse().unwrap()
}

/// Three probes traceroute through router 10.0.0.1; `flipped` moves every
/// packet from the usual next hop B to a new hop C (the paper's Fig. 4
/// route change).
fn route_change_records(bin: u64, flipped: bool) -> Vec<TracerouteRecord> {
    let next = if flipped { "10.0.2.9" } else { "10.0.1.1" };
    let mut out = Vec::new();
    for probe in 1u32..=3 {
        out.push(TracerouteRecord {
            msm_id: MeasurementId(1),
            probe_id: ProbeId(probe),
            probe_asn: Asn(64000 + probe),
            dst: ip("198.51.100.1"),
            timestamp: SimTime(bin * 3600 + u64::from(probe) * 60),
            paris_id: 0,
            hops: vec![
                Hop::new(1, vec![Reply::new(ip("10.0.0.1"), 1.0); 4]),
                Hop::new(2, vec![Reply::new(ip(next), 2.0); 4]),
            ],
            destination_reached: true,
        });
    }
    out
}

#[test]
fn route_change_parity_across_thread_counts() {
    // The flip bin must fire a real forwarding alarm — parity on quiet
    // bins alone would never exercise alarm construction and ordering —
    // and every thread count must produce the identical alarm bytes.
    let mut sequential = ForwardingDetector::new(&DetectorConfig::fast_test());
    for b in 0..8u64 {
        assert!(sequential
            .process_bin_sequential(BinId(b), &route_change_records(b, false))
            .is_empty());
    }
    let want = sequential.process_bin_sequential(BinId(8), &route_change_records(8, true));
    assert!(!want.is_empty(), "route change must alarm");
    assert!(want[0].rho < -0.25);

    // 3 and 5 don't divide the 32-shard count: they cover the uneven
    // round-robin bundles the CI matrix points {1, 2, 4, 8} never hit.
    for threads in [1usize, 2, 3, 4, 5, 8] {
        let mut cfg = DetectorConfig::fast_test();
        cfg.threads = threads;
        let mut engine = ForwardingDetector::new(&cfg);
        for b in 0..8u64 {
            let got = engine.process_bin(BinId(b), &route_change_records(b, false));
            assert!(got.is_empty(), "threads={threads} bin {b}: {got:?}");
        }
        let got = engine.process_bin(BinId(8), &route_change_records(8, true));
        assert_eq!(got, want, "threads={threads}");
        assert_eq!(engine.tracked_patterns(), sequential.tracked_patterns());
    }
}

/// Full-pipeline parity through the AMS-IX outage (§7.3) — the scenario
/// whose ground truth is forwarding-only: routes stay up while the peering
/// LAN blackholes packets, so this is where real forwarding alarms (and
/// the references they mutate) get exercised end to end.
fn ixp_outage_parity(seed: u64) {
    let case = ixp::case_study(seed, Scale::Small);
    let mut parallel = Analyzer::new(parity_config(), case.mapper.clone());
    let mut sequential = Analyzer::new(DetectorConfig::fast_test(), case.mapper.clone());
    // Zoom into the outage (10:20–12:00 on day 5): a few warm bins, the
    // outage bins themselves, and the recovery.
    let (outage_start, outage_end) = ixp::outage_bins();
    let mut forwarding_alarms = 0usize;
    for bin in outage_start - 4..outage_end + 2 {
        let records = case.platform.collect_bin(BinId(bin));
        let a = parallel.process_bin(BinId(bin), &records);
        let b = sequential.process_bin_sequential(BinId(bin), &records);
        assert_reports_identical(&a, &b, &format!("ixp seed {seed} bin {bin}"));
        forwarding_alarms += a.forwarding_alarms.len();
    }
    assert!(
        forwarding_alarms > 0,
        "seed {seed}: the outage fired no forwarding alarms — parity was only proven on quiet bins"
    );
    assert_eq!(
        parallel.tracked_patterns(),
        sequential.tracked_patterns(),
        "seed {seed}: tracked patterns diverged"
    );
}

#[test]
fn ixp_outage_parity_seed_1() {
    ixp_outage_parity(1);
}

#[test]
fn ixp_outage_parity_seed_7() {
    ixp_outage_parity(7);
}

#[test]
fn ixp_outage_parity_seed_2015() {
    ixp_outage_parity(2015);
}

/// Decode a generated spec into a traceroute record. Reply codes: 0 is a
/// timeout, anything else a small-address-space IP — collisions (repeated
/// routers, next hop == router, shared destinations) are the point.
fn record_from_spec(dst: u32, hops: &[Vec<u32>]) -> TracerouteRecord {
    TracerouteRecord {
        msm_id: MeasurementId(1),
        probe_id: ProbeId(1),
        probe_asn: Asn(64500),
        dst: Ipv4Addr::new(198, 51, 100, (dst % 4) as u8),
        timestamp: SimTime(0),
        paris_id: 0,
        hops: hops
            .iter()
            .enumerate()
            .map(|(ttl, replies)| {
                Hop::new(
                    ttl as u8 + 1,
                    replies
                        .iter()
                        .map(|&code| {
                            if code == 0 {
                                Reply::TIMEOUT
                            } else {
                                Reply::new(Ipv4Addr::new(10, 0, 0, (code % 6) as u8), 1.0)
                            }
                        })
                        .collect(),
                )
            })
            .collect(),
        destination_reached: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The sharded arena and the nested-map path must build identical
    /// pattern sets for arbitrary record sets — including degenerate ones
    /// (all-timeout hops, empty reply lists, repeated addresses).
    #[test]
    fn prop_sharded_patterns_match_nested_maps(
        dsts in prop::collection::vec(0u32..4, 1..8),
        hop_specs in prop::collection::vec(
            prop::collection::vec(prop::collection::vec(0u32..8, 0..4), 0..5),
            1..8,
        ),
    ) {
        let records: Vec<TracerouteRecord> = dsts
            .iter()
            .zip(hop_specs.iter())
            .map(|(&dst, hops)| record_from_spec(dst, hops))
            .collect();
        prop_assert_eq!(
            collect_patterns_sharded(&records),
            collect_patterns(&records)
        );
        // And the stateful detectors agree bin over bin on the same feed.
        let cfg = DetectorConfig::fast_test();
        let mut engine = ForwardingDetector::new(&cfg);
        let mut sequential = ForwardingDetector::new(&cfg);
        for b in 0..2u64 {
            let a = engine.process_bin(BinId(b), &records);
            let s = sequential.process_bin_sequential(BinId(b), &records);
            prop_assert_eq!(a, s);
            prop_assert_eq!(engine.tracked_patterns(), sequential.tracked_patterns());
        }
    }
}
