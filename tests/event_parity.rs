//! Incremental event-channel parity: the fleet event deltas emitted per
//! bin by the empathy extractor — through `Analyzer::aggregate` and
//! `StreamRouter::merge`, the two funnels every execution path shares —
//! must be *byte-for-byte* identical for any thread count, any scatter
//! chunk size, and any pipeline depth; the fold of those deltas must
//! equal the post-hoc extraction over the same evidence; and the channel
//! must survive the depth-2 compaction drain fence unchanged.
//!
//! Like the other parity suites, the CI matrix re-runs this file under
//! `PINPOINT_THREADS` × `PINPOINT_CHUNK` × `PINPOINT_PIPELINE` via
//! `common::parity_config`; the tests additionally sweep threads, chunks,
//! and depths locally, so every matrix point proves several schedules.

#[allow(dead_code)]
mod common;

use common::parity_config;
use pinpoint::core::aggregate::{EmpathyExtractor, StreamEvidence};
use pinpoint::core::{render, AnalysisSession, DetectorConfig, EventTable, FleetReport};
use pinpoint::model::json::Value;
use pinpoint::model::BinId;
use pinpoint::scenarios::{ixp, multi, Scale};

/// Render one bin's event deltas the way the service does — the byte
/// sequence under test.
fn deltas_json(report: &FleetReport) -> String {
    Value::Array(report.events.iter().map(render::event).collect()).to_string()
}

/// A fresh multi-stream AMS-IX case with the given detector config.
/// `case_study` is deterministic in its seed, so every call replays the
/// identical feed.
fn fresh_case(cfg: DetectorConfig) -> multi::MultiStreamCase {
    let mut case = multi::case_study(2015, Scale::Small);
    case.cfg = cfg;
    case
}

/// Drive the outage window through a fleet session at `depth`, returning
/// each bin's rendered deltas plus the final ranked listing (rendered
/// from the delta fold, exactly as the service reporter serves it).
fn drive(cfg: DetectorConfig, depth: usize) -> (Vec<String>, String) {
    let case = fresh_case(cfg);
    let mut router = case.router();
    let mut session = router.session(depth);
    let (outage_start, outage_end) = ixp::outage_bins();
    let mut per_bin = Vec::new();
    let mut table = EventTable::new();
    for bin in outage_start - 4..outage_end + 2 {
        let feeds = case.collect_bin(BinId(bin));
        if let Some(report) = session.push_bin(BinId(bin), &feeds) {
            table.absorb(&report.events);
            per_bin.push(deltas_json(&report));
        }
    }
    if let Some(report) = session.flush() {
        table.absorb(&report.events);
        per_bin.push(deltas_json(&report));
    }
    (per_bin, render::events(&table.ranked()).to_string())
}

/// The incremental event channel through the AMS-IX outage must emit the
/// identical bytes for the env-selected matrix point, a local thread /
/// chunk sweep, and every pipeline depth.
#[test]
fn fleet_event_deltas_are_byte_identical_across_schedules() {
    let (want_bins, want_listing) = drive(DetectorConfig::fast_test(), 1);
    assert!(
        want_bins.iter().any(|b| b != "[]"),
        "the outage emitted no event deltas — parity would only be proven on quiet bins"
    );

    // The env-selected matrix point (CI exports the axes), every depth.
    for depth in [0usize, 1, 2] {
        let (got_bins, got_listing) = drive(parity_config(), depth);
        assert_eq!(got_bins, want_bins, "deltas diverged at depth {depth}");
        assert_eq!(
            got_listing, want_listing,
            "listing diverged at depth {depth}"
        );
    }

    // A local sweep including a thread count that doesn't divide the
    // shard count and a pathological 3-record chunk.
    for threads in [1usize, 3] {
        for chunk in [0usize, 3] {
            let mut cfg = DetectorConfig::fast_test();
            cfg.threads = threads;
            cfg.ingest_chunk_records = chunk;
            let (got_bins, got_listing) = drive(cfg, 2);
            assert_eq!(
                got_bins, want_bins,
                "deltas diverged at threads {threads} chunk {chunk}"
            );
            assert_eq!(got_listing, want_listing);
        }
    }
}

/// The fold of the emitted deltas must equal the post-hoc view from the
/// session AND a fresh extractor replaying the same evidence — the
/// incremental channel loses nothing and invents nothing.
#[test]
fn delta_fold_equals_post_hoc_extraction() {
    let case = fresh_case(parity_config());
    let (outage_start, outage_end) = ixp::outage_bins();

    let mut router = case.router();
    let mut session = router.session(0);
    let mut reports: Vec<FleetReport> = Vec::new();
    for bin in outage_start - 4..outage_end + 2 {
        let feeds = case.collect_bin(BinId(bin));
        reports.extend(session.push_bin(BinId(bin), &feeds));
    }
    reports.extend(session.flush());

    let mut table = EventTable::new();
    for report in &reports {
        table.absorb(&report.events);
    }
    assert!(!table.is_empty(), "the outage produced no events");

    // The session's own ranked view is the same fold.
    assert_eq!(session.events(), table.ranked());

    // A fresh extractor replaying the emitted per-stream evidence lands
    // on the identical table: incremental emission IS the extraction.
    let mut replay = EmpathyExtractor::new(&case.cfg);
    let mut replay_table = EventTable::new();
    for report in &reports {
        let evidence: Vec<StreamEvidence<'_>> = report
            .streams
            .iter()
            .map(|r| StreamEvidence {
                delay: &r.delay_alarms,
                forwarding: &r.forwarding_alarms,
                mapper: &case.mapper,
            })
            .collect();
        let deltas = replay.observe(report.bin, &evidence, &report.magnitudes);
        replay_table.absorb(&deltas);
    }
    assert_eq!(replay.events(), table.ranked());
    assert_eq!(replay_table.ranked(), table.ranked());
}

/// The channel must survive the depth-2 compaction drain fence: with a
/// short reference expiry the intern tables compact mid-stream, and the
/// deltas must still match the serial schedule byte for byte.
#[test]
fn event_channel_survives_compaction_drain_fence() {
    let mut cfg = DetectorConfig::fast_test();
    cfg.reference_expiry_bins = 3;

    let (serial_bins, serial_listing) = drive(cfg.clone(), 1);
    assert!(
        serial_bins.iter().any(|b| b != "[]"),
        "no deltas through the fence schedule"
    );
    let (overlapped_bins, overlapped_listing) = drive(cfg, 2);
    assert_eq!(
        overlapped_bins, serial_bins,
        "deltas diverged across the drain fence"
    );
    assert_eq!(overlapped_listing, serial_listing);
}
