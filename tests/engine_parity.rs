//! Engine-parity tests: the sharded, parallel, allocation-lean bin engine
//! must be *byte-for-byte* equivalent to the single-threaded nested-map
//! reference path — same alarms in the same order, same link statistics,
//! same AS magnitudes — across scenarios and seeds. This is the contract
//! that lets every future scaling PR treat the engine as a drop-in.
//!
//! The CI thread matrix re-runs this file with `PINPOINT_THREADS` ∈
//! {1, 2, 4, 8} on a multi-core runner — the only place real interleavings
//! exist — and with `PINPOINT_RADIX` ∈ {on, off} so both grouping sorters
//! face every interleaving, via [`common::parity_config`].

mod common;

use common::{assert_reports_identical, parity_config};
use pinpoint::core::{Analyzer, DetectorConfig};
use pinpoint::model::BinId;
use pinpoint::scenarios::{steady, Scale};

/// Drive two analyzers — parallel engine vs sequential reference — over the
/// same scenario stream and demand identical reports every bin.
fn parity_over_scenario(seed: u64, bins: u64) {
    let case = steady::case_study(seed, Scale::Small);
    let mut parallel = Analyzer::new(parity_config(), case.mapper.clone());
    let mut sequential = Analyzer::new(DetectorConfig::fast_test(), case.mapper.clone());
    for bin in 0..bins {
        let records = case.platform.collect_bin(BinId(bin));
        let a = parallel.process_bin(BinId(bin), &records);
        let b = sequential.process_bin_sequential(BinId(bin), &records);
        assert_reports_identical(&a, &b, &format!("seed {seed} bin {bin}"));
    }
    assert_eq!(
        parallel.tracked_links(),
        sequential.tracked_links(),
        "seed {seed}: tracked links diverged"
    );
    assert_eq!(
        parallel.tracked_patterns(),
        sequential.tracked_patterns(),
        "seed {seed}: tracked patterns diverged"
    );
}

#[test]
fn parallel_engine_matches_sequential_seed_1() {
    parity_over_scenario(1, 5);
}

#[test]
fn parallel_engine_matches_sequential_seed_7() {
    parity_over_scenario(7, 5);
}

#[test]
fn parallel_engine_matches_sequential_seed_2015() {
    parity_over_scenario(2015, 5);
}

#[test]
fn parity_holds_for_any_thread_count() {
    // 1, 2, and many workers must all match the sequential path — the
    // engine's determinism cannot depend on the core count of the machine
    // that happens to run it. 3 and 5 stay in the list because they do
    // NOT divide the 32-shard count: they exercise uneven round-robin
    // bundles the CI matrix points {1, 2, 4, 8} never produce.
    let case = steady::case_study(42, Scale::Small);
    let records = case.platform.collect_bin(BinId(0));
    let mut reference = Analyzer::new(DetectorConfig::fast_test(), case.mapper.clone());
    let want = reference.process_bin_sequential(BinId(0), &records);
    for threads in [1usize, 2, 3, 4, 5, 8] {
        let mut cfg = DetectorConfig::fast_test();
        cfg.threads = threads;
        let mut analyzer = Analyzer::new(cfg, case.mapper.clone());
        let got = analyzer.process_bin(BinId(0), &records);
        assert_reports_identical(&got, &want, &format!("threads={threads}"));
    }
}

#[test]
fn parity_holds_for_any_radix_mode() {
    // The radix sorter is stable and the gathered runs arrive in record
    // order, so WHICH sorter groups a shard must be invisible in the
    // output. Sweep the whole knob range — always-radix, never-radix,
    // auto, and a mid threshold that splits real shards across the two
    // paths — against the sequential reference, over several bins so
    // sorter choice also cannot leak through carried state.
    let case = steady::case_study(2015, Scale::Small);
    let mut reference = Analyzer::new(DetectorConfig::fast_test(), case.mapper.clone());
    let mut analyzers: Vec<(usize, Analyzer)> = [1usize, usize::MAX, 0, 64]
        .into_iter()
        .map(|radix_min_keys| {
            let mut cfg = parity_config();
            cfg.radix_min_keys = radix_min_keys;
            (radix_min_keys, Analyzer::new(cfg, case.mapper.clone()))
        })
        .collect();
    for bin in 0..5u64 {
        let records = case.platform.collect_bin(BinId(bin));
        let want = reference.process_bin_sequential(BinId(bin), &records);
        for (radix_min_keys, analyzer) in analyzers.iter_mut() {
            let got = analyzer.process_bin(BinId(bin), &records);
            assert_reports_identical(
                &got,
                &want,
                &format!("radix_min_keys={radix_min_keys} bin {bin}"),
            );
        }
    }
}

#[test]
fn parity_through_a_delay_event() {
    // Parity is easiest to fake on quiet data; assert it through an actual
    // anomaly so alarm construction and ordering are exercised. Drive a
    // hand-built three-probe world (same shape as the pipeline unit tests)
    // into a surge bin.
    use pinpoint::model::records::{Hop, Reply, TracerouteRecord};
    use pinpoint::model::{Asn, MeasurementId, ProbeId, SimTime};
    use std::net::Ipv4Addr;

    let ip = |s: &str| s.parse::<Ipv4Addr>().unwrap();
    let records = |bin: u64, link_delay: f64| -> Vec<TracerouteRecord> {
        let mut out = Vec::new();
        for (probe, asn, eps) in [(1u32, 100u32, 0.4), (2, 200, -0.8), (3, 300, 1.3)] {
            for shot in 0..2 {
                let base = 10.0 + eps;
                out.push(TracerouteRecord {
                    msm_id: MeasurementId(1),
                    probe_id: ProbeId(probe),
                    probe_asn: Asn(asn),
                    dst: ip("198.51.100.1"),
                    timestamp: SimTime(bin * 3600 + shot * 1800),
                    paris_id: 0,
                    hops: vec![
                        Hop::new(
                            1,
                            (0..3)
                                .map(|k| Reply::new(ip("10.0.0.1"), base + 0.01 * f64::from(k)))
                                .collect(),
                        ),
                        Hop::new(
                            2,
                            (0..3)
                                .map(|k| {
                                    Reply::new(
                                        ip("10.0.0.2"),
                                        base + link_delay + 0.01 * f64::from(k),
                                    )
                                })
                                .collect(),
                        ),
                    ],
                    destination_reached: true,
                });
            }
        }
        out
    };
    let mapper = pinpoint::core::aggregate::AsMapper::from_prefixes([(
        "10.0.0.0/16".parse().unwrap(),
        Asn(64500),
    )]);
    let mut parallel = Analyzer::new(parity_config(), mapper.clone());
    let mut sequential = Analyzer::new(DetectorConfig::fast_test(), mapper);
    for b in 0..24u64 {
        let recs = records(b, 2.0);
        let a = parallel.process_bin(BinId(b), &recs);
        let r = sequential.process_bin_sequential(BinId(b), &recs);
        assert_reports_identical(&a, &r, &format!("warmup bin {b}"));
    }
    let recs = records(24, 32.0);
    let a = parallel.process_bin(BinId(24), &recs);
    let r = sequential.process_bin_sequential(BinId(24), &recs);
    assert!(!a.delay_alarms.is_empty(), "surge must alarm");
    assert_reports_identical(&a, &r, "surge bin");
}
