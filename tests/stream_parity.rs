//! Fleet parity tests: a [`StreamRouter`] fleet on the shared engine pool
//! must be *byte-for-byte* equivalent to the single-threaded sequential
//! path for any thread count, its merge must be lossless (a fleet over
//! disjoint streams equals running each analyzer alone), and the delay
//! side's reference eviction must agree between the engine and sequential
//! paths under link churn.
//!
//! Like the other parity suites, the CI thread matrix re-runs this file
//! with `PINPOINT_THREADS` ∈ {1, 2, 4, 8} on a multi-core runner.

mod common;

use common::{assert_reports_identical, parity_config, threads_from_env};
use pinpoint::core::aggregate::AsMapper;
use pinpoint::core::{Analyzer, DetectorConfig, FleetReport, StreamRouter};
use pinpoint::model::records::{Hop, Reply, TracerouteRecord};
use pinpoint::model::{Asn, BinId, MeasurementId, ProbeId, SimTime};
use pinpoint::scenarios::{ixp, multi, Scale};
use std::net::Ipv4Addr;

fn mapper() -> AsMapper {
    AsMapper::from_prefixes([
        ("10.0.0.0/8".parse().unwrap(), Asn(64500)),
        ("198.51.0.0/16".parse().unwrap(), Asn(64501)),
    ])
}

/// Demand two fleet reports be byte-for-byte identical: same per-stream
/// reports in the same stream order, same merged magnitudes.
fn assert_fleets_identical(a: &FleetReport, b: &FleetReport, ctx: &str) {
    assert_eq!(a.bin, b.bin, "{ctx}: bin");
    assert_eq!(a.streams.len(), b.streams.len(), "{ctx}: stream count");
    for (i, (ra, rb)) in a.streams.iter().zip(&b.streams).enumerate() {
        assert_reports_identical(ra, rb, &format!("{ctx} stream {i}"));
    }
    assert_eq!(a.magnitudes, b.magnitudes, "{ctx}: merged magnitudes");
}

/// A delay-heavy feed: three probes in three ASes traverse a per-stream
/// link with a controllable delay (alarms when `surge`).
fn delay_feed(stream: u8, bin: u64, surge: bool) -> Vec<TracerouteRecord> {
    let near = Ipv4Addr::new(10, 1, stream, 1);
    let far = Ipv4Addr::new(10, 1, stream, 2);
    let dst = Ipv4Addr::new(198, 51, 100, stream + 1);
    let link_delay = if surge { 34.0 } else { 2.0 };
    let mut out = Vec::new();
    for (probe, asn, eps) in [(1u32, 100u32, 0.4), (2, 200, -0.8), (3, 300, 1.3)] {
        for shot in 0..2u64 {
            let base = 10.0 + eps + 0.05 * shot as f64;
            out.push(TracerouteRecord {
                msm_id: MeasurementId(u32::from(stream)),
                probe_id: ProbeId(probe),
                probe_asn: Asn(asn),
                dst,
                timestamp: SimTime(bin * 3600 + shot * 1800),
                paris_id: 0,
                hops: vec![
                    Hop::new(
                        1,
                        (0..3)
                            .map(|k| Reply::new(near, base + 0.01 * f64::from(k)))
                            .collect(),
                    ),
                    Hop::new(
                        2,
                        (0..3)
                            .map(|k| Reply::new(far, base + link_delay + 0.01 * f64::from(k)))
                            .collect(),
                    ),
                    Hop::new(3, vec![Reply::new(dst, base + link_delay + 2.0); 3]),
                ],
                destination_reached: true,
            });
        }
    }
    out
}

/// A forwarding-heavy feed: one probe through a per-stream router whose
/// next hop flips when `flipped` (fires a forwarding alarm).
fn forwarding_feed(stream: u8, bin: u64, flipped: bool) -> Vec<TracerouteRecord> {
    let router = Ipv4Addr::new(10, 2, stream, 1);
    let next = if flipped {
        Ipv4Addr::new(10, 2, stream, 99)
    } else {
        Ipv4Addr::new(10, 2, stream, 2)
    };
    (1u32..=3)
        .map(|probe| TracerouteRecord {
            msm_id: MeasurementId(100 + u32::from(stream)),
            probe_id: ProbeId(probe),
            probe_asn: Asn(64000 + probe),
            dst: Ipv4Addr::new(198, 51, 200, stream + 1),
            timestamp: SimTime(bin * 3600 + u64::from(probe) * 60),
            paris_id: 0,
            hops: vec![
                Hop::new(1, vec![Reply::new(router, 1.0); 4]),
                Hop::new(2, vec![Reply::new(next, 2.0); 4]),
            ],
            destination_reached: true,
        })
        .collect()
}

/// Three-stream fleet feeds: a delay stream, a forwarding stream, and a
/// mixed stream. `event` turns on the delay surge and the route flip.
fn fleet_feeds(bin: u64, event: bool) -> Vec<Vec<TracerouteRecord>> {
    let mut mixed = delay_feed(7, bin, event);
    mixed.extend(forwarding_feed(7, bin, false));
    vec![
        delay_feed(0, bin, event),
        forwarding_feed(1, bin, event),
        mixed,
    ]
}

fn fleet(cfg: &DetectorConfig, threads: usize) -> StreamRouter {
    let mut router = StreamRouter::with_magnitude_window(cfg.magnitude_window_bins);
    for label in ["delay-stream", "forwarding-stream", "mixed-stream"] {
        router.add_stream(label, Analyzer::new(cfg.clone(), mapper()));
    }
    router.set_threads(threads);
    router.register_ases([Asn(64500), Asn(64501)]);
    router
}

#[test]
fn fleet_parity_across_thread_counts() {
    // The event bin must fire real alarms in every stream — parity proven
    // only on quiet bins would never exercise alarm ordering or the merged
    // severity math.
    let cfg = DetectorConfig::fast_test();
    let mut sequential = fleet(&cfg, 1);
    let mut want = Vec::new();
    for b in 0..10u64 {
        want.push(sequential.process_bin_sequential(BinId(b), &fleet_feeds(b, false)));
    }
    let final_want = sequential.process_bin_sequential(BinId(10), &fleet_feeds(10, true));
    assert!(final_want.delay_alarms() >= 2, "delay surge must alarm");
    assert!(final_want.forwarding_alarms() >= 1, "route flip must alarm");

    // 3 and 5 don't divide the shard count: they cover the uneven
    // round-robin bundles the CI matrix points {1, 2, 4, 8} never hit.
    for threads in [1usize, 2, 3, 4, 5, 8] {
        let mut engine = fleet(&cfg, threads);
        for b in 0..10u64 {
            let got = engine.process_bin(BinId(b), &fleet_feeds(b, false));
            assert_fleets_identical(&got, &want[b as usize], &format!("threads={threads}"));
        }
        let got = engine.process_bin(BinId(10), &fleet_feeds(10, true));
        assert_fleets_identical(&got, &final_want, &format!("threads={threads} event bin"));
        assert_eq!(engine.tracked_links(), sequential.tracked_links());
        assert_eq!(engine.tracked_patterns(), sequential.tracked_patterns());
    }
}

#[test]
fn fleet_merge_is_lossless_over_disjoint_streams() {
    // A fleet over disjoint streams must equal running each analyzer
    // alone: same per-stream reports, merged severities = the sums.
    let cfg = parity_config();
    let mut router = fleet(&cfg, threads_from_env());
    let mut solo: Vec<Analyzer> = (0..3)
        .map(|_| Analyzer::new(cfg.clone(), mapper()))
        .collect();
    for analyzer in &mut solo {
        analyzer.register_ases([Asn(64500), Asn(64501)]);
    }
    for b in 0..12u64 {
        let event = b == 11;
        let feeds = fleet_feeds(b, event);
        let fleet_report = router.process_bin(BinId(b), &feeds);
        for (i, analyzer) in solo.iter_mut().enumerate() {
            let solo_report = analyzer.process_bin(BinId(b), &feeds[i]);
            assert_reports_identical(
                &fleet_report.streams[i],
                &solo_report,
                &format!("bin {b} stream {i}"),
            );
        }
        // Merged raw severities are exactly the per-stream sums.
        for (asn, merged) in &fleet_report.magnitudes {
            let dsum: f64 = fleet_report
                .streams
                .iter()
                .filter_map(|r| r.magnitude(*asn))
                .map(|m| m.delay_severity)
                .sum();
            let fsum: f64 = fleet_report
                .streams
                .iter()
                .filter_map(|r| r.magnitude(*asn))
                .map(|m| m.forwarding_severity)
                .sum();
            assert!(
                (merged.delay_severity - dsum).abs() < 1e-12,
                "bin {b} {asn}"
            );
            assert!(
                (merged.forwarding_severity - fsum).abs() < 1e-12,
                "bin {b} {asn}"
            );
        }
    }
    let solo_links: usize = solo.iter().map(Analyzer::tracked_links).sum();
    assert_eq!(router.tracked_links(), solo_links);
}

/// Link-churn feed: each bin, a fresh set of links appears (three probes
/// each, so they pass the diversity filter) and old ones vanish.
fn churn_feed(bin: u64) -> Vec<TracerouteRecord> {
    let gen = (bin % 50) as u8; // a new link family every bin
    delay_feed(200 + gen, bin, false)
}

#[test]
fn delay_reference_eviction_parity_under_churn() {
    let mut cfg = DetectorConfig::fast_test();
    cfg.reference_expiry_bins = 3;
    cfg.threads = threads_from_env();
    let mut engine = Analyzer::new(cfg.clone(), mapper());
    let mut sequential = Analyzer::new(cfg.clone(), mapper());
    let mut peak = 0usize;
    for b in 0..20u64 {
        let records = churn_feed(b);
        let a = engine.process_bin(BinId(b), &records);
        let s = sequential.process_bin_sequential(BinId(b), &records);
        assert_reports_identical(&a, &s, &format!("churn bin {b}"));
        assert_eq!(
            engine.tracked_links(),
            sequential.tracked_links(),
            "tracked links diverged at bin {b}"
        );
        peak = peak.max(engine.tracked_links());
    }
    // 20 bins × 2 fresh links each = 40 links seen, but only the expiry
    // window's worth may stay resident: the leak is fixed.
    let window_links = 2 * (cfg.reference_expiry_bins + 1);
    assert!(
        peak <= window_links,
        "delay references leak: peak {peak} > window {window_links}"
    );
    assert!(
        engine.tracked_links() <= window_links,
        "final {} > window {window_links}",
        engine.tracked_links()
    );
}

#[test]
fn delay_eviction_frees_midwarmup_links() {
    // A link that dies during warm-up must not hold its warm-up buffer
    // forever — eviction drops the whole entry.
    let mut cfg = DetectorConfig::fast_test();
    cfg.reference_expiry_bins = 2;
    cfg.threads = threads_from_env();
    let mut analyzer = Analyzer::new(cfg, mapper());
    // One bin of a link (warm-up needs 3) — then silence.
    analyzer.process_bin(BinId(0), &delay_feed(9, 0, false));
    assert!(analyzer.tracked_links() > 0);
    for b in 1..=3u64 {
        analyzer.process_bin(BinId(b), &[]);
    }
    assert_eq!(
        analyzer.tracked_links(),
        0,
        "mid-warm-up links must be evicted"
    );
}

/// Full-scenario fleet parity through the AMS-IX outage: the pooled
/// engine and the sequential path must agree on every stream AND the
/// merged view, with real forwarding alarms firing.
#[test]
fn multi_scenario_fleet_parity_through_the_outage() {
    let mut case = multi::case_study(2015, Scale::Small);
    case.cfg = parity_config();
    let mut engine = case.router();
    case.cfg.threads = 1;
    let mut sequential = case.router();
    let (outage_start, outage_end) = ixp::outage_bins();
    let mut forwarding_alarms = 0usize;
    for bin in outage_start - 4..outage_end + 2 {
        let feeds = case.collect_bin(BinId(bin));
        let a = engine.process_bin(BinId(bin), &feeds);
        let s = sequential.process_bin_sequential(BinId(bin), &feeds);
        assert_fleets_identical(&a, &s, &format!("ixp fleet bin {bin}"));
        forwarding_alarms += a.forwarding_alarms();
    }
    assert!(
        forwarding_alarms > 0,
        "the outage fired no forwarding alarms — parity was only proven on quiet bins"
    );
    assert_eq!(engine.tracked_links(), sequential.tracked_links());
    assert_eq!(engine.tracked_patterns(), sequential.tracked_patterns());
}
