//! Failure-injection and adversarial-input integration tests: the detector
//! must never panic on malformed, hostile, or degenerate measurement data —
//! real Atlas feeds contain all of it — and every ingestion path (batch,
//! chunked incremental, pipelined at any depth) must sanitize it
//! identically: the CI matrix re-runs this file under `PINPOINT_THREADS`
//! × `PINPOINT_CHUNK` × `PINPOINT_PIPELINE` like the parity suites.

mod common;

use common::{assert_reports_identical, parity_config};
use pinpoint::core::aggregate::AsMapper;
use pinpoint::core::{Analyzer, BinReport, DetectorConfig, SanitizeStats};
use pinpoint::model::records::{Hop, Reply, TracerouteRecord};
use pinpoint::model::{Asn, BinId, MeasurementId, ProbeId, SimTime};
use pinpoint::netsim::ArtifactModel;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn analyzer() -> Analyzer {
    Analyzer::new(
        DetectorConfig::fast_test(),
        AsMapper::from_prefixes([("10.0.0.0/8".parse().unwrap(), Asn(64500))]),
    )
}

fn analyzer_with(cfg: &DetectorConfig) -> Analyzer {
    Analyzer::new(
        cfg.clone(),
        AsMapper::from_prefixes([("10.0.0.0/8".parse().unwrap(), Asn(64500))]),
    )
}

/// Feed a bin stream through `process_bin` — the reference schedule.
fn run_batch(
    cfg: &DetectorConfig,
    bins: &[Vec<TracerouteRecord>],
) -> (Vec<BinReport>, SanitizeStats) {
    let mut a = analyzer_with(cfg);
    let reports = bins
        .iter()
        .enumerate()
        .map(|(i, records)| a.process_bin(BinId(i as u64), records))
        .collect();
    (reports, a.sanitize_stats())
}

/// Feed the same stream incrementally, `chunk` records per `ingest` call.
fn run_chunked(
    cfg: &DetectorConfig,
    bins: &[Vec<TracerouteRecord>],
    chunk: usize,
) -> (Vec<BinReport>, SanitizeStats) {
    let mut a = analyzer_with(cfg);
    let mut reports = Vec::new();
    for (i, records) in bins.iter().enumerate() {
        a.begin_bin(BinId(i as u64));
        for slice in records.chunks(chunk.max(1)) {
            a.ingest(slice);
        }
        reports.push(a.finish_bin());
    }
    (reports, a.sanitize_stats())
}

/// Feed the same stream through the cross-bin pipelined executor.
fn run_pipelined(
    cfg: &DetectorConfig,
    bins: &[Vec<TracerouteRecord>],
    depth: usize,
) -> (Vec<BinReport>, SanitizeStats) {
    let mut a = analyzer_with(cfg);
    let mut reports = Vec::new();
    {
        let mut driver = a.pipelined(depth);
        for (i, records) in bins.iter().enumerate() {
            reports.extend(driver.push_bin(BinId(i as u64), records));
        }
        reports.extend(driver.finish());
    }
    (reports, a.sanitize_stats())
}

/// Every ingestion path must produce byte-identical reports AND identical
/// cumulative sanitizer counters for the same record stream.
fn assert_all_paths_agree(cfg: &DetectorConfig, bins: &[Vec<TracerouteRecord>], ctx: &str) {
    let (want, want_stats) = run_batch(cfg, bins);
    for (label, (got, got_stats)) in [
        ("chunked(1)", run_chunked(cfg, bins, 1)),
        ("chunked(7)", run_chunked(cfg, bins, 7)),
        ("pipelined(1)", run_pipelined(cfg, bins, 1)),
        ("pipelined(2)", run_pipelined(cfg, bins, 2)),
    ] {
        assert_eq!(got.len(), want.len(), "{ctx}/{label}: report count");
        for (a, b) in got.iter().zip(&want) {
            assert_reports_identical(a, b, &format!("{ctx}/{label} bin {:?}", a.bin));
        }
        assert_eq!(got_stats, want_stats, "{ctx}/{label}: sanitize stats");
    }
}

/// A bin of well-formed multi-hop traceroutes from a few probes — the
/// clean substrate the artifact model then corrupts.
fn clean_bin(bin: u64, records: usize) -> Vec<TracerouteRecord> {
    let mut out = Vec::with_capacity(records);
    for r in 0..records {
        let mut rec = base_record();
        rec.probe_id = ProbeId(r as u32 % 6);
        rec.probe_asn = Asn(64500);
        rec.timestamp = SimTime(bin * 3600 + (r as u64 % 6) * 540);
        rec.paris_id = (r % 4) as u16;
        rec.hops = (0..8u8)
            .map(|h| {
                let addr = Ipv4Addr::new(10, 0, h + 1, 1 + (r as u8 % 2) * (h % 2));
                let rtt = 3.0 * f64::from(h) + 2.0 + 0.1 * (r % 5) as f64;
                Hop::new(h + 1, vec![Reply::new(addr, rtt); 3])
            })
            .collect();
        out.push(rec);
    }
    out
}

#[test]
fn hostile_artifacts_sanitize_identically_on_every_path() {
    let model = ArtifactModel::hostile(0x5EED);
    let bins: Vec<Vec<TracerouteRecord>> = (0..6u64)
        .map(|b| {
            let mut records = clean_bin(b, 48);
            for rec in &mut records {
                model.corrupt(rec);
            }
            records
        })
        .collect();
    let cfg = parity_config();
    assert_all_paths_agree(&cfg, &bins, "hostile artifacts");

    // The corruption must actually have exercised the sanitizer — a
    // parity proof over a no-op pass would be vacuous.
    let (_, stats) = run_batch(&cfg, &bins);
    assert!(
        stats.quarantined() > 0 && stats.repaired > 0,
        "hostile feed neither quarantined nor repaired: {stats:?}"
    );
}

fn base_record() -> TracerouteRecord {
    TracerouteRecord {
        msm_id: MeasurementId(1),
        probe_id: ProbeId(1),
        probe_asn: Asn(64500),
        dst: "10.9.9.9".parse().unwrap(),
        timestamp: SimTime(0),
        paris_id: 0,
        hops: vec![],
        destination_reached: false,
    }
}

#[test]
fn empty_bin_and_empty_records() {
    let mut a = analyzer();
    let report = a.process_bin(BinId(0), &[]);
    assert!(report.delay_alarms.is_empty());
    assert!(report.forwarding_alarms.is_empty());

    let report = a.process_bin(BinId(1), &[base_record()]);
    assert_eq!(report.records, 1);
    assert!(report.link_stats.is_empty());
}

#[test]
fn all_timeout_traceroutes() {
    let mut rec = base_record();
    rec.hops = (1..=10)
        .map(|ttl| Hop::new(ttl, vec![Reply::TIMEOUT; 3]))
        .collect();
    let mut a = analyzer();
    let report = a.process_bin(BinId(0), &[rec]);
    assert!(report.link_stats.is_empty());
}

#[test]
fn hostile_rtt_values() {
    // NaN / infinite / negative / enormous RTTs must not poison medians or
    // panic sorting.
    let ip = |s: &str| -> Ipv4Addr { s.parse().unwrap() };
    let mut records = Vec::new();
    for (probe, asn) in [(1u32, 100u32), (2, 200), (3, 300)] {
        let mut rec = base_record();
        rec.probe_id = ProbeId(probe);
        rec.probe_asn = Asn(asn);
        rec.hops = vec![
            Hop::new(
                1,
                vec![
                    Reply::new(ip("10.0.0.1"), f64::NAN),
                    Reply::new(ip("10.0.0.1"), -5.0),
                    Reply::new(ip("10.0.0.1"), 1.0),
                ],
            ),
            Hop::new(
                2,
                vec![
                    Reply::new(ip("10.0.0.2"), f64::INFINITY),
                    Reply::new(ip("10.0.0.2"), 1e300),
                    Reply::new(ip("10.0.0.2"), 2.0),
                ],
            ),
        ];
        records.push(rec);
    }
    let mut a = analyzer();
    for bin in 0..8 {
        let report = a.process_bin(BinId(bin), &records);
        for alarm in &report.delay_alarms {
            assert!(alarm.deviation.is_finite());
        }
    }
}

#[test]
fn duplicate_and_contradictory_hops() {
    let ip = |s: &str| -> Ipv4Addr { s.parse().unwrap() };
    let mut rec = base_record();
    // The same address at several TTLs plus two different responders within
    // one hop (mid-measurement path change).
    rec.hops = vec![
        Hop::new(1, vec![Reply::new(ip("10.0.0.1"), 1.0); 3]),
        Hop::new(
            2,
            vec![
                Reply::new(ip("10.0.0.2"), 2.0),
                Reply::new(ip("10.0.0.3"), 2.5),
                Reply::TIMEOUT,
            ],
        ),
        Hop::new(3, vec![Reply::new(ip("10.0.0.1"), 3.0); 3]),
    ];
    let mut a = analyzer();
    let report = a.process_bin(BinId(0), &[rec]);
    // No self-links.
    for link in report.link_stats.keys() {
        assert_ne!(link.near, link.far);
    }
}

#[test]
fn enormous_single_bin_is_handled() {
    // 20k identical traceroutes in one bin: just slow, never wrong.
    let ip = |s: &str| -> Ipv4Addr { s.parse().unwrap() };
    let mut records = Vec::with_capacity(20_000);
    for i in 0..20_000u32 {
        let mut rec = base_record();
        rec.probe_id = ProbeId(i % 50);
        rec.probe_asn = Asn(100 + (i % 7));
        rec.hops = vec![
            Hop::new(
                1,
                vec![Reply::new(ip("10.0.0.1"), 1.0 + f64::from(i % 10) * 0.01); 3],
            ),
            Hop::new(
                2,
                vec![Reply::new(ip("10.0.0.2"), 3.0 + f64::from(i % 10) * 0.01); 3],
            ),
        ];
        records.push(rec);
    }
    let mut a = analyzer();
    let report = a.process_bin(BinId(0), &records);
    assert_eq!(report.records, 20_000);
    assert_eq!(report.link_stats.len(), 1);
}

/// Generate an arbitrary (structurally valid, content-hostile) record set
/// from a seed: random hop counts, timeouts, and RTTs.
fn arbitrary_records(seed: u64, n_hops: usize, n_records: usize) -> Vec<TracerouteRecord> {
    let mut rng = pinpoint::stats::SplitMix64::new(seed);
    let mut records = Vec::new();
    for r in 0..n_records {
        let mut rec = base_record();
        rec.probe_id = ProbeId(r as u32 % 5);
        rec.probe_asn = Asn(100 + (r as u32 % 4) * 100);
        rec.hops = (0..n_hops)
            .map(|ttl| {
                let replies = (0..3)
                    .map(|_| {
                        if rng.next_bool(0.25) {
                            Reply::TIMEOUT
                        } else {
                            let octet = (rng.next_below(5) + 1) as u8;
                            Reply::new(Ipv4Addr::new(10, 0, 0, octet), rng.next_f64() * 100.0)
                        }
                    })
                    .collect();
                Hop::new(ttl as u8 + 1, replies)
            })
            .collect();
        records.push(rec);
    }
    records
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary well-formed record structure never panics the pipeline.
    #[test]
    fn prop_arbitrary_records_never_panic(
        seed in 0u64..1000,
        n_hops in 0usize..12,
        n_records in 0usize..20,
    ) {
        let records = arbitrary_records(seed, n_hops, n_records);
        let mut a = analyzer();
        for bin in 0..3 {
            let report = a.process_bin(BinId(bin), &records);
            prop_assert!(report.delay_alarms.iter().all(|al| al.deviation.is_finite()));
            prop_assert!(report
                .forwarding_alarms
                .iter()
                .all(|al| al.rho.is_finite() && (-1.0..=1.0).contains(&al.rho)));
        }
    }

    /// Arbitrary records — further mangled by the artifact model — reach
    /// the same verdicts and reports on every ingestion path: batch,
    /// chunked incremental, and pipelined at depths 1 and 2.
    #[test]
    fn prop_ingestion_paths_agree_on_arbitrary_artifacts(
        seed in 0u64..500,
        n_hops in 0usize..12,
        n_records in 0usize..16,
        corrupt in 0u8..2,
    ) {
        let model = ArtifactModel::hostile(seed ^ 0xA17F);
        let bins: Vec<Vec<TracerouteRecord>> = (0..3u64)
            .map(|b| {
                let mut records = arbitrary_records(seed ^ b, n_hops, n_records);
                if corrupt == 1 {
                    for rec in &mut records {
                        model.corrupt(rec);
                    }
                }
                records
            })
            .collect();
        assert_all_paths_agree(&parity_config(), &bins, "prop artifacts");
    }
}
