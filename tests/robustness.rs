//! Failure-injection and adversarial-input integration tests: the detector
//! must never panic on malformed, hostile, or degenerate measurement data —
//! real Atlas feeds contain all of it.

use pinpoint::core::aggregate::AsMapper;
use pinpoint::core::{Analyzer, DetectorConfig};
use pinpoint::model::records::{Hop, Reply, TracerouteRecord};
use pinpoint::model::{Asn, BinId, MeasurementId, ProbeId, SimTime};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn analyzer() -> Analyzer {
    Analyzer::new(
        DetectorConfig::fast_test(),
        AsMapper::from_prefixes([("10.0.0.0/8".parse().unwrap(), Asn(64500))]),
    )
}

fn base_record() -> TracerouteRecord {
    TracerouteRecord {
        msm_id: MeasurementId(1),
        probe_id: ProbeId(1),
        probe_asn: Asn(64500),
        dst: "10.9.9.9".parse().unwrap(),
        timestamp: SimTime(0),
        paris_id: 0,
        hops: vec![],
        destination_reached: false,
    }
}

#[test]
fn empty_bin_and_empty_records() {
    let mut a = analyzer();
    let report = a.process_bin(BinId(0), &[]);
    assert!(report.delay_alarms.is_empty());
    assert!(report.forwarding_alarms.is_empty());

    let report = a.process_bin(BinId(1), &[base_record()]);
    assert_eq!(report.records, 1);
    assert!(report.link_stats.is_empty());
}

#[test]
fn all_timeout_traceroutes() {
    let mut rec = base_record();
    rec.hops = (1..=10)
        .map(|ttl| Hop::new(ttl, vec![Reply::TIMEOUT; 3]))
        .collect();
    let mut a = analyzer();
    let report = a.process_bin(BinId(0), &[rec]);
    assert!(report.link_stats.is_empty());
}

#[test]
fn hostile_rtt_values() {
    // NaN / infinite / negative / enormous RTTs must not poison medians or
    // panic sorting.
    let ip = |s: &str| -> Ipv4Addr { s.parse().unwrap() };
    let mut records = Vec::new();
    for (probe, asn) in [(1u32, 100u32), (2, 200), (3, 300)] {
        let mut rec = base_record();
        rec.probe_id = ProbeId(probe);
        rec.probe_asn = Asn(asn);
        rec.hops = vec![
            Hop::new(
                1,
                vec![
                    Reply::new(ip("10.0.0.1"), f64::NAN),
                    Reply::new(ip("10.0.0.1"), -5.0),
                    Reply::new(ip("10.0.0.1"), 1.0),
                ],
            ),
            Hop::new(
                2,
                vec![
                    Reply::new(ip("10.0.0.2"), f64::INFINITY),
                    Reply::new(ip("10.0.0.2"), 1e300),
                    Reply::new(ip("10.0.0.2"), 2.0),
                ],
            ),
        ];
        records.push(rec);
    }
    let mut a = analyzer();
    for bin in 0..8 {
        let report = a.process_bin(BinId(bin), &records);
        for alarm in &report.delay_alarms {
            assert!(alarm.deviation.is_finite());
        }
    }
}

#[test]
fn duplicate_and_contradictory_hops() {
    let ip = |s: &str| -> Ipv4Addr { s.parse().unwrap() };
    let mut rec = base_record();
    // The same address at several TTLs plus two different responders within
    // one hop (mid-measurement path change).
    rec.hops = vec![
        Hop::new(1, vec![Reply::new(ip("10.0.0.1"), 1.0); 3]),
        Hop::new(
            2,
            vec![
                Reply::new(ip("10.0.0.2"), 2.0),
                Reply::new(ip("10.0.0.3"), 2.5),
                Reply::TIMEOUT,
            ],
        ),
        Hop::new(3, vec![Reply::new(ip("10.0.0.1"), 3.0); 3]),
    ];
    let mut a = analyzer();
    let report = a.process_bin(BinId(0), &[rec]);
    // No self-links.
    for link in report.link_stats.keys() {
        assert_ne!(link.near, link.far);
    }
}

#[test]
fn enormous_single_bin_is_handled() {
    // 20k identical traceroutes in one bin: just slow, never wrong.
    let ip = |s: &str| -> Ipv4Addr { s.parse().unwrap() };
    let mut records = Vec::with_capacity(20_000);
    for i in 0..20_000u32 {
        let mut rec = base_record();
        rec.probe_id = ProbeId(i % 50);
        rec.probe_asn = Asn(100 + (i % 7));
        rec.hops = vec![
            Hop::new(
                1,
                vec![Reply::new(ip("10.0.0.1"), 1.0 + f64::from(i % 10) * 0.01); 3],
            ),
            Hop::new(
                2,
                vec![Reply::new(ip("10.0.0.2"), 3.0 + f64::from(i % 10) * 0.01); 3],
            ),
        ];
        records.push(rec);
    }
    let mut a = analyzer();
    let report = a.process_bin(BinId(0), &records);
    assert_eq!(report.records, 20_000);
    assert_eq!(report.link_stats.len(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary well-formed record structure never panics the pipeline.
    #[test]
    fn prop_arbitrary_records_never_panic(
        seed in 0u64..1000,
        n_hops in 0usize..12,
        n_records in 0usize..20,
    ) {
        let mut rng = pinpoint::stats::SplitMix64::new(seed);
        let mut records = Vec::new();
        for r in 0..n_records {
            let mut rec = base_record();
            rec.probe_id = ProbeId(r as u32 % 5);
            rec.probe_asn = Asn(100 + (r as u32 % 4) * 100);
            rec.hops = (0..n_hops)
                .map(|ttl| {
                    let replies = (0..3)
                        .map(|_| {
                            if rng.next_bool(0.25) {
                                Reply::TIMEOUT
                            } else {
                                let octet = (rng.next_below(5) + 1) as u8;
                                Reply::new(
                                    Ipv4Addr::new(10, 0, 0, octet),
                                    rng.next_f64() * 100.0,
                                )
                            }
                        })
                        .collect();
                    Hop::new(ttl as u8 + 1, replies)
                })
                .collect();
            records.push(rec);
        }
        let mut a = analyzer();
        for bin in 0..3 {
            let report = a.process_bin(BinId(bin), &records);
            prop_assert!(report.delay_alarms.iter().all(|al| al.deviation.is_finite()));
            prop_assert!(report
                .forwarding_alarms
                .iter()
                .all(|al| al.rho.is_finite() && (-1.0..=1.0).contains(&al.rho)));
        }
    }
}
