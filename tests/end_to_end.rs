//! Cross-crate integration: simulator → platform → detectors → aggregation.

use pinpoint::core::{Analyzer, DetectorConfig};
use pinpoint::model::{Asn, BinId};
use pinpoint::scenarios::runner::{run, CaseStudy};
use pinpoint::scenarios::{ddos, ixp, leak, steady, Scale};

/// The whole pipeline is a pure function of the seed: two runs of the same
/// case study produce byte-identical alarm streams.
#[test]
fn pipeline_is_deterministic_end_to_end() {
    let collect = || {
        let case = steady::case_study(7, Scale::Small);
        let mut analyzer = case.analyzer();
        let short = CaseStudy {
            end_bin: BinId(6),
            ..case
        };
        let mut fingerprint: Vec<String> = Vec::new();
        run(&short, &mut analyzer, |report| {
            for a in &report.delay_alarms {
                fingerprint.push(format!("{a}"));
            }
            for a in &report.forwarding_alarms {
                fingerprint.push(format!("{a}"));
            }
            for (asn, m) in &report.magnitudes {
                fingerprint.push(format!(
                    "{asn}:{:.9}:{:.9}",
                    m.delay_magnitude, m.forwarding_magnitude
                ));
            }
        });
        fingerprint
    };
    assert_eq!(collect(), collect());
}

/// Different seeds genuinely change the world.
#[test]
fn different_seeds_differ() {
    let links = |seed: u64| {
        let case = steady::case_study(seed, Scale::Small);
        let records = case.platform.collect_bin(BinId(0));
        records.len()
    };
    // Same number of measurements fire, but the traceroutes differ; compare
    // actual hop content through a couple of records.
    let case_a = steady::case_study(1, Scale::Small);
    let case_b = steady::case_study(2, Scale::Small);
    let ra = case_a.platform.collect_bin(BinId(0));
    let rb = case_b.platform.collect_bin(BinId(0));
    assert!(links(1) > 0);
    assert_ne!(ra, rb, "seeds 1 and 2 produced identical measurement data");
}

/// Alarms carry IPs that the mapper attributes to the ASes the scenario
/// targeted — the §6 aggregation path works end to end.
#[test]
fn alarms_attribute_to_ground_truth_ases() {
    let case = leak::case_study(2015, Scale::Small);
    let (ls, le) = leak::leak_window();
    let leak_bins: Vec<u64> = (ls.0 / 3600..=le.0 / 3600).collect();
    let mapper = case.mapper.clone();
    let gc = case.landmarks.gc_asn;
    let l3 = case.landmarks.level3_asn;
    let mut analyzer = case.analyzer();
    let short = CaseStudy {
        end_bin: BinId(leak_bins[leak_bins.len() - 1] + 1),
        ..case
    };
    let mut touched: std::collections::BTreeSet<Asn> = Default::default();
    run(&short, &mut analyzer, |report| {
        if leak_bins.contains(&report.bin.0) {
            for a in &report.delay_alarms {
                touched.extend(mapper.groups(&[a.link.near, a.link.far]));
            }
        }
    });
    assert!(
        touched.contains(&gc) || touched.contains(&l3),
        "no leak-window alarm touched the Level3 family; touched = {touched:?}"
    );
}

/// §7.3's complementarity claim as an integration property: in the outage
/// window, forwarding alarms fire for the IXP while its delay severity
/// stays at zero (no samples to measure).
#[test]
fn detectors_are_complementary_on_blackholes() {
    let case = ixp::case_study(2015, Scale::Small);
    let amsix = case.landmarks.amsix_asn;
    let (os, oe) = ixp::outage_window();
    let outage_bins: Vec<u64> = (os.0 / 3600..=oe.0 / 3600).collect();
    let mut analyzer = case.analyzer();
    let short = CaseStudy {
        end_bin: BinId(outage_bins[outage_bins.len() - 1] + 1),
        ..case
    };
    let mut fwd_sev = 0.0f64;
    let mut delay_sev = 0.0f64;
    run(&short, &mut analyzer, |report| {
        if outage_bins.contains(&report.bin.0) {
            if let Some(m) = report.magnitude(amsix) {
                fwd_sev += m.forwarding_severity.abs();
                delay_sev += m.delay_severity.abs();
            }
        }
    });
    assert!(fwd_sev > 0.5, "forwarding severity missing: {fwd_sev}");
    assert!(
        delay_sev < fwd_sev / 2.0,
        "delay severity {delay_sev} should be dwarfed by forwarding {fwd_sev}"
    );
}

/// An analyzer fed out-of-scenario data (no registered prefixes) still
/// works: alarms simply fall out of AS aggregation.
#[test]
fn unmapped_world_degrades_gracefully() {
    let case = ddos::case_study(3, Scale::Small);
    let records = case.platform.collect_bin(BinId(0));
    let mut bare = Analyzer::new(
        DetectorConfig::fast_test(),
        pinpoint::core::aggregate::AsMapper::new(),
    );
    let report = bare.process_bin(BinId(0), &records);
    // Everything runs; magnitudes are just empty of mapped ASes.
    assert!(report.records > 0);
    assert!(report.magnitudes.is_empty());
}

/// The streaming interface and the batch interface agree.
#[test]
fn stream_equals_batch() {
    let case = steady::case_study(11, Scale::Small);
    let stream: Vec<_> = case.platform.stream(BinId(2), BinId(4)).collect();
    assert_eq!(stream.len(), 2);
    for (bin, records) in &stream {
        assert_eq!(*records, case.platform.collect_bin(*bin));
    }
}
