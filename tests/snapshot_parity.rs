//! Snapshot/restore parity: serializing the complete resumable state at
//! an arbitrary bin cut and restoring it — in the same process or from
//! bytes alone, as a fresh process would — must leave the remaining bins
//! byte-identical to the uninterrupted run. Like the other parity
//! suites, the CI matrix re-runs this file under `PINPOINT_THREADS` ×
//! `PINPOINT_CHUNK` × `PINPOINT_PIPELINE` × `PINPOINT_RADIX`; the
//! snapshot determinism rule (throughput knobs normalized out, maps in
//! sorted or dense-id order — see `pinpoint_core::snapshot`) makes the
//! bytes themselves stable across that matrix too.

mod common;

use common::{assert_reports_identical, parity_config};
use pinpoint::core::aggregate::AsMapper;
use pinpoint::core::{
    AnalysisSession, Analyzer, BinReport, DetectorConfig, FleetReport, StreamRouter,
};
use pinpoint::model::records::{Hop, Reply, TracerouteRecord};
use pinpoint::model::{Asn, BinId, MeasurementId, ProbeId, SimTime};
use pinpoint::scenarios::{ixp, Scale};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn mapper() -> AsMapper {
    AsMapper::from_prefixes([
        ("10.0.0.0/8".parse().unwrap(), Asn(64500)),
        ("198.51.0.0/16".parse().unwrap(), Asn(64501)),
    ])
}

/// Three probes in three ASes traverse one link with a controllable
/// delay; `surge` fires a delay alarm once references are warm.
fn delay_records(bin: u64, surge: bool) -> Vec<TracerouteRecord> {
    let (near, far, dst) = (
        Ipv4Addr::new(10, 1, 0, 1),
        Ipv4Addr::new(10, 1, 0, 2),
        Ipv4Addr::new(198, 51, 100, 1),
    );
    let link_delay = if surge { 34.0 } else { 2.0 };
    let mut out = Vec::new();
    for (probe, asn, eps) in [(1u32, 100u32, 0.4), (2, 200, -0.8), (3, 300, 1.3)] {
        for shot in 0..2u64 {
            let base = 10.0 + eps + 0.05 * shot as f64;
            out.push(TracerouteRecord {
                msm_id: MeasurementId(1),
                probe_id: ProbeId(probe),
                probe_asn: Asn(asn),
                dst,
                timestamp: SimTime(bin * 3600 + shot * 1800),
                paris_id: 0,
                hops: vec![
                    Hop::new(
                        1,
                        (0..3)
                            .map(|k| Reply::new(near, base + 0.01 * f64::from(k)))
                            .collect(),
                    ),
                    Hop::new(
                        2,
                        (0..3)
                            .map(|k| Reply::new(far, base + link_delay + 0.01 * f64::from(k)))
                            .collect(),
                    ),
                    Hop::new(3, vec![Reply::new(dst, base + link_delay + 2.0); 3]),
                ],
                destination_reached: true,
            });
        }
    }
    out
}

/// One churn traceroute over keys unique to `bin` — interns fresh keys
/// every bin so compaction sweeps and eviction counters are live state
/// the snapshot must carry.
fn churn_records(bin: u64) -> Vec<TracerouteRecord> {
    let near = Ipv4Addr::new(10, 9, (bin % 250) as u8, 1);
    let far = Ipv4Addr::new(10, 9, (bin % 250) as u8, 2);
    vec![TracerouteRecord {
        msm_id: MeasurementId(9),
        probe_id: ProbeId(9_000 + bin as u32),
        probe_asn: Asn(64900),
        dst: Ipv4Addr::new(198, 51, 200, (bin % 250) as u8),
        timestamp: SimTime(bin * 3600 + 7),
        paris_id: 0,
        hops: vec![
            Hop::new(1, vec![Reply::new(near, 3.0); 3]),
            Hop::new(2, vec![Reply::new(far, 5.0); 3]),
        ],
        destination_reached: true,
    }]
}

/// A schedule with warm references, churn, an empty bin, and a surge bin
/// — every kind of state a snapshot has to carry.
fn schedule() -> Vec<(BinId, Vec<TracerouteRecord>)> {
    (0..12u64)
        .map(|b| {
            let mut records = if b == 5 {
                Vec::new()
            } else {
                delay_records(b, b == 9)
            };
            if b < 4 {
                records.extend(churn_records(b));
            }
            (BinId(b), records)
        })
        .collect()
}

/// The uninterrupted reference reports over a schedule.
fn uninterrupted(cfg: &DetectorConfig, bins: &[(BinId, Vec<TracerouteRecord>)]) -> Vec<BinReport> {
    let mut analyzer = Analyzer::new(cfg.clone(), mapper());
    bins.iter()
        .map(|(bin, records)| analyzer.process_bin(*bin, records))
        .collect()
}

/// Snapshot-at-cut + restore + remaining bins must reproduce the
/// uninterrupted reports byte for byte — at every cut point, on the
/// matrix-selected configuration, restoring both with auto knobs
/// (`Analyzer::restore`) and with the matrix knobs re-pinned
/// (`Analyzer::restore_with`).
#[test]
fn restore_at_every_cut_resumes_byte_identical() {
    let cfg = parity_config();
    let bins = schedule();
    let want = uninterrupted(&cfg, &bins);
    assert!(
        want.iter().any(|r| !r.delay_alarms.is_empty()),
        "the schedule fired no alarms — parity would only be proven on quiet bins"
    );

    for cut in 0..=bins.len() {
        let mut head = Analyzer::new(cfg.clone(), mapper());
        for (bin, records) in &bins[..cut] {
            head.process_bin(*bin, records);
        }
        let bytes = head.snapshot();

        // Fresh-process restore: only the bytes cross the boundary.
        let mut tail = Analyzer::restore(&bytes).expect("restore");
        for ((bin, records), reference) in bins[cut..].iter().zip(&want[cut..]) {
            let got = tail.process_bin(*bin, records);
            assert_reports_identical(&got, reference, &format!("cut {cut} bin {bin:?}"));
        }

        // Restore with the matrix throughput knobs re-pinned.
        let mut pinned = Analyzer::restore_with(&bytes, |c| {
            c.threads = cfg.threads;
            c.ingest_chunk_records = cfg.ingest_chunk_records;
            c.pipeline_depth = cfg.pipeline_depth;
            c.radix_min_keys = cfg.radix_min_keys;
        })
        .expect("restore_with");
        for ((bin, records), reference) in bins[cut..].iter().zip(&want[cut..]) {
            let got = pinned.process_bin(*bin, records);
            assert_reports_identical(&got, reference, &format!("pinned cut {cut} bin {bin:?}"));
        }
    }
}

/// The snapshot determinism rule: the same analytic state must yield the
/// same bytes no matter which thread count, chunk size, or radix mode
/// produced it — and re-snapshotting a restored analyzer reproduces the
/// bytes exactly (the codec round-trips losslessly).
#[test]
fn snapshot_bytes_are_identical_across_the_scheduling_matrix() {
    let bins = schedule();
    let mut reference_bytes: Option<Vec<u8>> = None;
    for (threads, chunk, radix) in [
        (1usize, 0usize, 0usize),
        (2, 3, 1),
        (3, 1, usize::MAX),
        (5, 7, 0),
        (0, 0, 0),
    ] {
        let mut cfg = DetectorConfig::fast_test();
        cfg.threads = threads;
        cfg.ingest_chunk_records = chunk;
        cfg.radix_min_keys = radix;
        let mut analyzer = Analyzer::new(cfg, mapper());
        for (bin, records) in &bins {
            analyzer.process_bin(*bin, records);
        }
        let bytes = analyzer.snapshot();
        match &reference_bytes {
            None => reference_bytes = Some(bytes),
            Some(want) => assert_eq!(
                &bytes, want,
                "snapshot bytes diverged at threads={threads} chunk={chunk} radix={radix}"
            ),
        }
    }
    // Lossless round-trip: restore + re-snapshot reproduces the bytes.
    let bytes = reference_bytes.unwrap();
    let restored = Analyzer::restore(&bytes).expect("restore");
    assert_eq!(
        restored.snapshot(),
        bytes,
        "restore + snapshot is not the identity"
    );
}

/// The session-level checkpoint: drain the pipelined executor mid-stream
/// (collecting the flushed report like any other), restore a fresh
/// session from the bytes, and finish the run — byte-identical at every
/// depth, through the realistic AMS-IX outage scenario.
#[test]
fn session_checkpoint_resumes_through_ixp_outage() {
    let case = ixp::case_study(7, Scale::Small);
    let (outage_start, outage_end) = ixp::outage_bins();
    let bins: Vec<(BinId, Vec<TracerouteRecord>)> = (outage_start - 3..outage_end + 2)
        .map(|b| (BinId(b), case.platform.collect_bin(BinId(b))))
        .collect();
    let cut = bins.len() / 2; // mid-outage

    let cfg = parity_config();
    let mut reference = Analyzer::new(cfg.clone(), case.mapper.clone());
    let want: Vec<BinReport> = bins
        .iter()
        .map(|(bin, records)| reference.process_bin(*bin, records))
        .collect();
    assert!(
        want.iter().any(|r| !r.forwarding_alarms.is_empty()),
        "the outage fired no alarms"
    );

    for depth in [1usize, 2] {
        let mut got: Vec<BinReport> = Vec::new();
        let bytes = {
            let mut head = Analyzer::new(cfg.clone(), case.mapper.clone());
            let mut session = head.session(depth);
            for (bin, records) in &bins[..cut] {
                got.extend(session.push_bin(*bin, records));
            }
            let (flushed, bytes) = session.checkpoint();
            got.extend(flushed);
            bytes
        };
        let mut tail = Analyzer::restore_with(&bytes, |c| {
            c.threads = cfg.threads;
            c.ingest_chunk_records = cfg.ingest_chunk_records;
            c.pipeline_depth = cfg.pipeline_depth;
            c.radix_min_keys = cfg.radix_min_keys;
        })
        .expect("restore");
        let mut session = tail.session(depth);
        for (bin, records) in &bins[cut..] {
            got.extend(session.push_bin(*bin, records));
        }
        got.extend(session.flush());
        assert_eq!(got.len(), want.len(), "depth {depth}: report count");
        for (a, b) in got.iter().zip(&want) {
            assert_reports_identical(a, b, &format!("depth {depth} bin {:?}", a.bin));
        }
        // The cumulative event channel also survived the boundary.
        assert_eq!(tail.events(), reference.events(), "depth {depth}: events");
    }
}

/// Fleet snapshots carry every stream's label and analyzer plus the
/// fleet-level baseline and event channel; restoring resumes the merged
/// reports byte-identically.
#[test]
fn fleet_snapshot_resumes_byte_identical() {
    let feeds = |bin: u64| -> Vec<Vec<TracerouteRecord>> {
        vec![
            delay_records(bin, bin == 9),
            if bin < 4 {
                churn_records(bin)
            } else {
                delay_records(bin, false)
            },
        ]
    };
    let fleet = |cfg: &DetectorConfig| -> StreamRouter {
        let mut router = StreamRouter::with_magnitude_window(cfg.magnitude_window_bins);
        router.add_stream("alpha", Analyzer::new(cfg.clone(), mapper()));
        router.add_stream("beta", Analyzer::new(cfg.clone(), mapper()));
        router.set_threads(cfg.threads);
        router.register_ases([Asn(64500)]);
        router
    };

    let cfg = parity_config();
    let mut reference = fleet(&cfg);
    let want: Vec<FleetReport> = (0..12u64)
        .map(|b| reference.process_bin(BinId(b), &feeds(b)))
        .collect();

    for cut in [0usize, 1, 5, 10, 12] {
        let mut head = fleet(&cfg);
        for b in 0..cut as u64 {
            head.process_bin(BinId(b), &feeds(b));
        }
        let bytes = head.snapshot();
        let mut tail = StreamRouter::restore(&bytes).expect("fleet restore");
        assert_eq!(tail.len(), 2, "cut {cut}: stream count");
        assert_eq!(tail.label(pinpoint::core::StreamId(0)), "alpha");
        for b in cut as u64..12 {
            let got = tail.process_bin(BinId(b), &feeds(b));
            let reference = &want[b as usize];
            assert_eq!(got.bin, reference.bin, "cut {cut} bin {b}");
            assert_eq!(
                got.magnitudes, reference.magnitudes,
                "cut {cut} bin {b}: merged magnitudes"
            );
            assert_eq!(got.events, reference.events, "cut {cut} bin {b}: events");
            for (i, (ra, rb)) in got.streams.iter().zip(&reference.streams).enumerate() {
                assert_reports_identical(ra, rb, &format!("cut {cut} bin {b} stream {i}"));
            }
        }
        assert_eq!(tail.events(), reference.events(), "cut {cut}: fleet events");
    }
}

/// Corrupt or truncated snapshots must be rejected with an error — never
/// a panic, never a silently wrong analyzer.
#[test]
fn truncated_and_corrupt_snapshots_are_rejected_not_panics() {
    let mut analyzer = Analyzer::new(DetectorConfig::fast_test(), mapper());
    for (bin, records) in schedule() {
        analyzer.process_bin(bin, &records);
    }
    let bytes = analyzer.snapshot();

    // Every proper prefix fails cleanly.
    for cut in 0..bytes.len() {
        assert!(
            Analyzer::restore(&bytes[..cut]).is_err(),
            "truncation at {cut}/{} was accepted",
            bytes.len()
        );
    }
    // Trailing garbage fails cleanly.
    let mut padded = bytes.clone();
    padded.extend_from_slice(b"garbage");
    assert!(
        Analyzer::restore(&padded).is_err(),
        "trailing bytes accepted"
    );
    // A fleet snapshot is not an analyzer snapshot and vice versa.
    let fleet_bytes = StreamRouter::new().snapshot();
    assert!(Analyzer::restore(&fleet_bytes).is_err(), "kind confusion");
    assert!(StreamRouter::restore(&bytes).is_err(), "kind confusion");
    // A flipped magic byte fails cleanly.
    let mut flipped = bytes.clone();
    flipped[0] ^= 0xFF;
    assert!(Analyzer::restore(&flipped).is_err(), "bad magic accepted");
}

/// Decode a generated spec into a traceroute record (same tiny address
/// space as the ingest-parity generator, so key collisions are common).
fn record_from_spec(i: usize, hops: &[Vec<u32>]) -> TracerouteRecord {
    TracerouteRecord {
        msm_id: MeasurementId(1),
        probe_id: ProbeId((i % 5) as u32),
        probe_asn: Asn(64000 + (i % 4) as u32),
        dst: Ipv4Addr::new(198, 51, 100, (i % 3) as u8),
        timestamp: SimTime(0),
        paris_id: 0,
        hops: hops
            .iter()
            .enumerate()
            .map(|(ttl, replies)| {
                Hop::new(
                    ttl as u8 + 1,
                    replies
                        .iter()
                        .map(|&code| {
                            if code == 0 {
                                Reply::TIMEOUT
                            } else {
                                Reply::new(
                                    Ipv4Addr::new(10, 0, (code % 3) as u8, (code % 7) as u8),
                                    f64::from(code % 11) * 0.7 + ttl as f64 * 0.1,
                                )
                            }
                        })
                        .collect(),
                )
            })
            .collect(),
        destination_reached: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Snapshot/restore at an arbitrary bin cut over arbitrary record
    /// streams equals the uninterrupted run — and the restore crosses a
    /// process-boundary-shaped interface (bytes only), with the codec
    /// round-tripping losslessly.
    #[test]
    fn prop_snapshot_cut_equals_uninterrupted(
        cut_seed in 0usize..64,
        hop_specs in prop::collection::vec(
            prop::collection::vec(prop::collection::vec(0u32..9, 0..5), 0..5),
            1..9,
        ),
        n_bins in 2usize..6,
    ) {
        let records: Vec<TracerouteRecord> = hop_specs
            .iter()
            .enumerate()
            .map(|(i, hops)| record_from_spec(i, hops))
            .collect();
        let cut = cut_seed % (n_bins + 1);
        let cfg = DetectorConfig::fast_test();

        let mut full = Analyzer::new(cfg.clone(), mapper());
        let want: Vec<BinReport> = (0..n_bins as u64)
            .map(|b| full.process_bin(BinId(b), &records))
            .collect();

        let mut head = Analyzer::new(cfg, mapper());
        for b in 0..cut as u64 {
            head.process_bin(BinId(b), &records);
        }
        let bytes = head.snapshot();
        drop(head); // only the bytes survive, as across a process boundary

        let mut tail = Analyzer::restore(&bytes).expect("restore");
        prop_assert_eq!(tail.snapshot(), bytes, "restore + snapshot is not the identity");
        for b in cut as u64..n_bins as u64 {
            let got = tail.process_bin(BinId(b), &records);
            assert_reports_identical(&got, &want[b as usize], &format!("cut {cut} bin {b}"));
        }
        prop_assert_eq!(tail.sanitize_stats(), full.sanitize_stats());
        prop_assert_eq!(tail.tracked_links(), full.tracked_links());
        prop_assert_eq!(tail.tracked_patterns(), full.tracked_patterns());
    }
}
