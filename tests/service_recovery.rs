//! Crash-safety and self-healing: a panicking stage must fail fast into
//! a degraded-but-serving daemon (never a deadlock), the HTTP surface
//! must survive hostile clients (slow loris, oversized headers), a
//! daemon over a *faulty* feed must byte-match the offline run over the
//! recovered feed (the collector's monotonicity rule IS
//! `netsim::RecoveredFeed`'s), and a checkpoint → restore → resume
//! sequence must reproduce the uninterrupted run byte-for-byte.

#[allow(dead_code)]
mod common;

use common::parity_config;
use pinpoint::core::render;
use pinpoint::core::session::AnalysisSession;
use pinpoint::core::{Analyzer, EventTable};
use pinpoint::model::records::TracerouteRecord;
use pinpoint::model::BinId;
use pinpoint::netsim::{FaultModel, FaultyFeed, FeedEvent, RecoveredFeed};
use pinpoint::scenarios::{ixp, Scale};
use pinpoint::service::{CheckpointStore, Daemon, FeedSignal, Phase, ServiceConfig, SignalFeed};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

/// Issue one HTTP/1.1 request and return `(status, body)`.
fn http(addr: SocketAddr, method: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .write_all(format!("{method} {path} HTTP/1.1\r\nHost: pinpointd\r\n\r\n").as_bytes())
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &str) -> (u16, String) {
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, "GET", path)
}

fn bare_analyzer() -> Analyzer {
    let mut analyzer = Analyzer::new(parity_config(), pinpoint::core::aggregate::AsMapper::new());
    analyzer.register_ases([pinpoint::model::Asn(64500)]);
    analyzer
}

/// The outage-window case the parity tests use: a feed with real alarms
/// and events, so byte-comparisons prove more than quiet bins.
fn outage_case() -> pinpoint::scenarios::CaseStudy {
    let mut case = ixp::case_study(7, Scale::Small);
    case.cfg = parity_config();
    let (outage_start, outage_end) = ixp::outage_bins();
    case.start_bin = BinId(outage_start - 3);
    case.end_bin = BinId(outage_end + 2);
    case
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pinpoint-recovery-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The supervisor regression: a reporter that panics mid-stream used to
/// leave the executor blocked on a full report queue and the collector
/// blocked behind it — forever. Now the panic poisons both queues, the
/// phase flips to the sticky `Failed`, `/health` reports the fault, and
/// `join()` completes (no deadlock, no abort).
#[test]
fn panicked_stage_degrades_instead_of_deadlocking() {
    let feed = (0..32u64).map(|b| (BinId(b), Vec::<TracerouteRecord>::new()));
    let cfg = ServiceConfig {
        collect_capacity: 2,
        report_capacity: 1,
        depth: 1,
        ..ServiceConfig::default()
    };
    let hook = Box::new(|bin: u64| {
        if bin == 2 {
            panic!("synthetic reporter crash at bin {bin}");
        }
    });
    let daemon =
        Daemon::spawn_with_report_hook(cfg, bare_analyzer(), feed, hook).expect("daemon spawns");
    let addr = daemon.local_addr();

    // wait_done returns on Failed too — if poisoning were broken this
    // would hang (the harness would time the test binary out).
    daemon.state().wait_done();
    assert_eq!(daemon.state().phase(), Phase::Failed);
    let fault = daemon.state().last_fault().expect("fault recorded");
    assert!(
        fault.contains("reporter stage panicked") && fault.contains("synthetic reporter crash"),
        "unhelpful fault message: {fault}"
    );

    // Degraded, not dead: already-published bins stay servable and
    // /health says exactly what happened.
    let (status, health) = get(addr, "/health");
    assert_eq!(status, 200);
    assert!(health.contains("\"phase\":\"failed\""), "health: {health}");
    assert!(health.contains("\"degraded\":true"), "health: {health}");
    assert!(
        health.contains("reporter stage panicked"),
        "health: {health}"
    );
    for bin in daemon.state().bin_ids() {
        let (status, _) = get(addr, &format!("/bins/{bin}/report"));
        assert_eq!(status, 200, "published bin {bin} vanished after the fault");
    }

    // The phase is sticky: a later graceful-drain request cannot demote
    // Failed back to Draining or let anything claim Done.
    daemon.shutdown();
    assert_eq!(daemon.state().phase(), Phase::Failed);
    daemon
        .join()
        .expect("supervised panic must not poison join");
}

/// A byte-at-a-time client (slow loris) must be answered `408` when the
/// *total* head-read budget runs out — per-read timeouts alone would let
/// one byte every few seconds hold a worker forever.
#[test]
fn slow_loris_client_is_cut_off_with_408() {
    let feed = (0..1u64).map(|b| (BinId(b), Vec::<TracerouteRecord>::new()));
    let cfg = ServiceConfig {
        http_read_deadline_ms: 250,
        ..ServiceConfig::default()
    };
    let daemon = Daemon::spawn(cfg, bare_analyzer(), feed).expect("daemon spawns");
    let mut stream = TcpStream::connect(daemon.local_addr()).expect("connect");
    let started = std::time::Instant::now();
    // Trickle a valid-looking request one byte at a time, never sending
    // the terminating blank line.
    for byte in b"GET /health HTTP/1.1\r\nX-Drip: " {
        if stream.write_all(&[*byte]).is_err() {
            break; // server already gave up on us — that's the point
        }
        std::thread::sleep(Duration::from_millis(20));
        if started.elapsed() > Duration::from_secs(2) {
            break;
        }
    }
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (status, body) = parse_response(&raw);
    assert_eq!(status, 408, "slow loris got: {raw}");
    assert!(body.contains("timed out"));
    // The worker is free again: a normal request still round-trips.
    let (status, _) = get(daemon.local_addr(), "/health");
    assert_eq!(status, 200);
    daemon.join().expect("clean join");
}

/// A request head larger than the 8 KiB cap is rejected with `431`
/// instead of being buffered without bound.
#[test]
fn oversized_request_head_is_rejected_with_431() {
    let feed = (0..1u64).map(|b| (BinId(b), Vec::<TracerouteRecord>::new()));
    let daemon =
        Daemon::spawn(ServiceConfig::default(), bare_analyzer(), feed).expect("daemon spawns");
    let mut stream = TcpStream::connect(daemon.local_addr()).expect("connect");
    let huge = format!(
        "GET /health HTTP/1.1\r\nX-Padding: {}\r\n\r\n",
        "a".repeat(16 * 1024)
    );
    // The server may reply (and reset) before we finish writing.
    let _ = stream.write_all(huge.as_bytes());
    let mut raw = String::new();
    let _ = stream.read_to_string(&mut raw);
    let (status, _) = parse_response(&raw);
    assert_eq!(status, 431, "oversized head got: {raw}");
    daemon.join().expect("clean join");
}

/// The fault-recovery parity claim: a daemon fed through the hostile
/// netsim fault injector (stalls, disconnects, duplicates, reordering,
/// truncation) must publish byte-for-byte the reports of an offline
/// session over `RecoveredFeed` of the *same* fault stream — because the
/// collector's monotonicity rule is the same recovery rule.
#[test]
fn daemon_over_faulty_feed_matches_offline_recovered_run() {
    let case = outage_case();
    let model = FaultModel::hostile(5);
    let feed: Vec<(BinId, Vec<TracerouteRecord>)> = case
        .platform
        .collect_bins(case.start_bin, case.end_bin)
        .into_iter()
        .collect();

    // Offline reference: client-side recovery over the identical fault
    // stream, driven through the unified session API.
    let mut offline: BTreeMap<u64, String> = BTreeMap::new();
    let mut table = EventTable::new();
    let mut analyzer = case.analyzer();
    {
        let mut session = analyzer.session(0);
        let recovered =
            RecoveredFeed::new(FaultyFeed::new(feed.clone().into_iter(), model.clone()));
        let mut fold = |report: pinpoint::core::BinReport| {
            table.absorb(&report.events);
            offline.insert(report.bin.0, render::bin_report(&report).to_string());
        };
        for (bin, records) in recovered {
            if let Some(report) = session.push_bin(bin, &records) {
                fold(report);
            }
        }
        if let Some(report) = session.flush() {
            fold(report);
        }
    }
    assert!(
        !offline.is_empty(),
        "the recovered feed delivered nothing — the fault model ate the window"
    );

    // Live: the same fault stream through the recovering daemon, with a
    // fast retry clock so the hostile disconnects don't slow the test.
    let cfg = ServiceConfig {
        retry_base_ms: 1,
        retry_cap_ms: 4,
        ..ServiceConfig::default()
    };
    let signals = FaultyFeed::new(feed.into_iter(), model).map(|event| match event {
        FeedEvent::Bin(bin, records) => FeedSignal::Bin(bin, records),
        FeedEvent::Stall(n) => FeedSignal::Stall(n),
        FeedEvent::Disconnect => FeedSignal::Disconnect,
    });
    let daemon =
        Daemon::spawn_recovering(cfg, case.analyzer(), SignalFeed(signals)).expect("daemon spawns");
    daemon.state().wait_done();
    assert_eq!(daemon.state().phase(), Phase::Done);

    assert_eq!(
        daemon.state().bin_ids(),
        offline.keys().copied().collect::<Vec<_>>(),
        "the daemon accepted a different bin set than client-side recovery"
    );
    for (bin, want) in &offline {
        let got = daemon.state().report(*bin).expect("bin cached");
        assert_eq!(got.as_str(), want, "faulty-feed parity broke on bin {bin}");
    }
    assert_eq!(
        daemon.state().events_json().as_str(),
        &render::events(&table.ranked()).to_string(),
        "the live /events fold diverged under faults"
    );

    // The degraded-mode accounting saw the faults the model injected.
    assert!(daemon.state().feed_retries() > 0, "no disconnect retried");
    assert!(daemon.state().feed_rejected() > 0, "no duplicate rejected");
    assert!(daemon.state().last_fault().is_some(), "no fault recorded");
    daemon.join().expect("clean join");
}

/// The crash-resume acceptance sequence, in process: run with periodic
/// checkpoints, stop mid-window ("crash"), restore the newest checkpoint
/// into a fresh daemon with `resume_from`, replay the remainder — every
/// post-resume report and the final `/events` listing byte-match the
/// uninterrupted reference run.
#[test]
fn checkpoint_resume_reports_are_byte_identical() {
    let case = outage_case();
    let dir = scratch("resume");
    let feed: Vec<(BinId, Vec<TracerouteRecord>)> = case
        .platform
        .collect_bins(case.start_bin, case.end_bin)
        .into_iter()
        .collect();

    // Uninterrupted reference.
    let mut reference: BTreeMap<u64, String> = BTreeMap::new();
    let mut table = EventTable::new();
    let mut analyzer = case.analyzer();
    {
        let mut session = analyzer.session(0);
        let mut fold = |report: pinpoint::core::BinReport| {
            table.absorb(&report.events);
            reference.insert(report.bin.0, render::bin_report(&report).to_string());
        };
        for (bin, records) in &feed {
            if let Some(report) = session.push_bin(*bin, records) {
                fold(report);
            }
        }
        if let Some(report) = session.flush() {
            fold(report);
        }
    }

    // Phase 1: checkpoint every 2 bins, then "crash" after a partial
    // window (the feed simply ends — the checkpoints on disk are what a
    // kill -9 would have left, thanks to the atomic rename).
    let cut = case.start_bin.0 + 5;
    let cfg = ServiceConfig {
        checkpoint_every: 2,
        checkpoint_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    let partial: Vec<_> = feed.iter().filter(|(b, _)| b.0 < cut).cloned().collect();
    let daemon = Daemon::spawn(cfg, case.analyzer(), partial.into_iter()).expect("daemon spawns");
    daemon.state().wait_done();
    assert!(
        daemon.state().last_checkpoint().is_some(),
        "no checkpoint was recorded"
    );
    let (_, health) = get(daemon.local_addr(), "/health");
    assert!(
        health.contains("\"checkpoint\":{\"lag_bins\":"),
        "health lacks checkpoint lag: {health}"
    );
    daemon.join().expect("clean join");

    // Phase 2: restore from bytes on disk ONLY (a new process would hold
    // nothing else), re-pinning the normalized throughput knobs.
    let store = CheckpointStore::new(&dir);
    let (last_bin, snapshot) = store.load_latest().expect("a valid checkpoint on disk");
    assert!(last_bin < cut);
    let knobs = case.cfg.clone();
    let restored = Analyzer::restore_with(&snapshot, |c| {
        c.threads = knobs.threads;
        c.ingest_chunk_records = knobs.ingest_chunk_records;
        c.pipeline_depth = knobs.pipeline_depth;
        c.radix_min_keys = knobs.radix_min_keys;
    })
    .expect("checkpoint restores");

    let cfg = ServiceConfig {
        resume_from: Some(last_bin),
        ..ServiceConfig::default()
    };
    // Replay overlaps the checkpoint on purpose: the collector must
    // reject the already-covered bins by monotonicity, not re-analyze
    // them.
    let rest: Vec<_> = feed
        .iter()
        .filter(|(b, _)| b.0 >= last_bin.saturating_sub(1))
        .cloned()
        .collect();
    let daemon = Daemon::spawn(cfg, restored, rest.into_iter()).expect("daemon spawns");
    let addr = daemon.local_addr();
    daemon.state().wait_done();
    assert_eq!(daemon.state().phase(), Phase::Done);
    assert!(
        daemon.state().feed_rejected() > 0,
        "the overlapping replay bins were not rejected"
    );

    let resumed_bins: Vec<u64> = (last_bin + 1..case.end_bin.0).collect();
    assert_eq!(daemon.state().bin_ids(), resumed_bins);
    for bin in &resumed_bins {
        let want = reference.get(bin).expect("reference bin");
        let (status, body) = get(addr, &format!("/bins/{bin}/report"));
        assert_eq!(status, 200);
        assert_eq!(&body, want, "resume diverged on bin {bin}");
    }
    // The event surface survives the restart: the reporter's fold was
    // seeded from the restored analyzer, so the final listing equals the
    // uninterrupted fold — including events opened before the crash.
    let (status, events_body) = get(addr, "/events");
    assert_eq!(status, 200);
    assert_eq!(
        events_body,
        render::events(&table.ranked()).to_string(),
        "post-resume /events forgot pre-crash history"
    );
    daemon.join().expect("clean join");
    let _ = std::fs::remove_dir_all(&dir);
}
