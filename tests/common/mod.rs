//! Helpers shared by the engine-parity integration tests.

use pinpoint::core::{BinReport, DetectorConfig};

/// Thread count under test: `PINPOINT_THREADS` when set (the CI matrix
/// exports 1/2/4/8 on a real multi-core runner), otherwise 0 ("all
/// cores"). Byte-for-byte parity must hold for every value.
pub fn threads_from_env() -> usize {
    match std::env::var("PINPOINT_THREADS") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("PINPOINT_THREADS={v:?} is not a thread count")),
        Err(_) => 0,
    }
}

/// The parity config: `fast_test` with the matrix-selected thread count.
pub fn parity_config() -> DetectorConfig {
    let mut cfg = DetectorConfig::fast_test();
    cfg.threads = threads_from_env();
    cfg
}

/// Demand two bin reports be byte-for-byte identical — same alarms in the
/// same order, same link statistics, same AS magnitudes.
pub fn assert_reports_identical(a: &BinReport, b: &BinReport, ctx: &str) {
    assert_eq!(a.bin, b.bin, "{ctx}: bin");
    assert_eq!(a.records, b.records, "{ctx}: record count");
    assert_eq!(a.delay_alarms, b.delay_alarms, "{ctx}: delay alarms");
    assert_eq!(
        a.forwarding_alarms, b.forwarding_alarms,
        "{ctx}: forwarding alarms"
    );
    assert_eq!(a.link_stats, b.link_stats, "{ctx}: link stats");
    assert_eq!(a.magnitudes, b.magnitudes, "{ctx}: magnitudes");
}
