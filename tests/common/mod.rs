//! Helpers shared by the engine-parity integration tests.

use pinpoint::core::{BinReport, DetectorConfig};

/// Parse a parity-matrix environment variable.
///
/// Contract (shared by `PINPOINT_THREADS` and `PINPOINT_CHUNK`): unset
/// means `0` — "let the engine decide" (all cores / the default chunk
/// size); any other value must parse as a non-negative integer, and the
/// engine's output must be byte-for-byte identical for every value. A
/// value that does not parse is a harness misconfiguration (a typo'd CI
/// matrix would silently test nothing), so it fails loudly with the
/// contract instead of a bare `parse` panic.
fn matrix_var(name: &str, meaning: &str) -> usize {
    match std::env::var(name) {
        Ok(v) => parse_matrix_var(name, &v, meaning),
        Err(std::env::VarError::NotPresent) => 0,
        Err(std::env::VarError::NotUnicode(v)) => {
            panic!("{name}={v:?} is not valid unicode — cannot be a {meaning}")
        }
    }
}

/// The value parser behind [`matrix_var`], split out so the failure mode
/// itself is testable without mutating process-global environment state
/// (tests in one binary run concurrently).
pub fn parse_matrix_var(name: &str, value: &str, meaning: &str) -> usize {
    value.trim().parse().unwrap_or_else(|_| {
        panic!(
            "{name}={value:?} is not a valid {meaning}: set {name} to 0 ({}) \
             or a positive integer, e.g. `{name}=4 cargo test`",
            match name {
                "PINPOINT_THREADS" => "use all cores",
                _ => "use the engine default",
            }
        )
    })
}

/// Worker-thread count under test: `PINPOINT_THREADS` when set (the CI
/// matrix exports 1/2/4/8 on a real multi-core runner), otherwise 0
/// ("all cores"). Byte-for-byte parity must hold for every value.
pub fn threads_from_env() -> usize {
    matrix_var("PINPOINT_THREADS", "thread count")
}

/// Scatter chunk size under test: `PINPOINT_CHUNK` when set (the CI
/// matrix pairs a pathological tiny chunk with the default), otherwise 0
/// (`DetectorConfig::ingest_chunk_records` auto). Byte-for-byte parity
/// must hold for every value — chunking is pure partitioning.
pub fn chunk_from_env() -> usize {
    matrix_var("PINPOINT_CHUNK", "scatter chunk size (records)")
}

/// Cross-bin pipeline depth under test: `PINPOINT_PIPELINE` when set
/// (the CI matrix exports 1 = serial and 2 = overlapped), otherwise 0
/// (`DetectorConfig::pipeline_depth` auto, currently 2). Byte-for-byte
/// parity must hold for every value — overlap is pure scheduling.
pub fn pipeline_from_env() -> usize {
    check_pipeline_depth(
        "PINPOINT_PIPELINE",
        matrix_var("PINPOINT_PIPELINE", "pipeline depth"),
    )
}

/// The depth validator behind [`pipeline_from_env`], split out (like
/// [`parse_matrix_var`]) so the failure mode is testable without mutating
/// process-global environment state. Depths above 2 would silently clamp
/// to 2 inside the engine — a matrix axis claiming to test depth 3 must
/// fail loudly instead of re-testing depth 2.
pub fn check_pipeline_depth(name: &str, depth: usize) -> usize {
    assert!(
        depth <= 2,
        "{name}={depth} is not a supported pipeline depth: set {name} to 0 \
         (engine default), 1 (strictly serial bins), or 2 (overlap bin n+1's \
         ingestion with bin n's analysis) — deeper pipelines do not exist",
    );
    depth
}

/// Radix grouping mode under test: `PINPOINT_RADIX` when set (the CI
/// matrix exports `on` and `off` alongside the default `auto`),
/// otherwise 0 — `DetectorConfig::radix_min_keys` auto, which resolves
/// to `pinpoint_stats::RADIX_MIN_KEYS`. Byte-for-byte parity must hold
/// for every value — the radix sort is stable, so grouping order never
/// depends on which sorter ran.
pub fn radix_from_env() -> usize {
    match std::env::var("PINPOINT_RADIX") {
        Ok(v) => parse_radix_mode("PINPOINT_RADIX", &v),
        Err(std::env::VarError::NotPresent) => 0,
        Err(std::env::VarError::NotUnicode(v)) => {
            panic!("PINPOINT_RADIX={v:?} is not valid unicode — cannot be a radix grouping mode")
        }
    }
}

/// The mode parser behind [`radix_from_env`], split out (like
/// [`parse_matrix_var`]) so the failure mode is testable without mutating
/// process-global environment state. Unlike the numeric matrix axes this
/// one also speaks `on`/`off`/`auto`, mapping them onto the
/// `radix_min_keys` threshold convention (`1` = every shard,
/// `usize::MAX` = never, `0` = engine default).
pub fn parse_radix_mode(name: &str, value: &str) -> usize {
    match value.trim() {
        "on" => 1,
        "off" => usize::MAX,
        "auto" | "" => 0,
        other => other.parse().unwrap_or_else(|_| {
            panic!(
                "{name}={value:?} is not a valid radix grouping mode: set {name} to \
                 `on` (radix-sort every shard), `off` (comparison sort only), `auto` \
                 (engine default threshold), or a key-count threshold, \
                 e.g. `{name}=128 cargo test`"
            )
        }),
    }
}

/// The parity config: `fast_test` with the matrix-selected thread count,
/// scatter chunk size, pipeline depth, and radix grouping mode.
pub fn parity_config() -> DetectorConfig {
    let mut cfg = DetectorConfig::fast_test();
    cfg.threads = threads_from_env();
    cfg.ingest_chunk_records = chunk_from_env();
    cfg.pipeline_depth = pipeline_from_env();
    cfg.radix_min_keys = radix_from_env();
    cfg
}

/// Demand two bin reports be byte-for-byte identical — same alarms in the
/// same order, same link statistics, same AS magnitudes.
pub fn assert_reports_identical(a: &BinReport, b: &BinReport, ctx: &str) {
    assert_eq!(a.bin, b.bin, "{ctx}: bin");
    assert_eq!(a.records, b.records, "{ctx}: record count");
    assert_eq!(a.delay_alarms, b.delay_alarms, "{ctx}: delay alarms");
    assert_eq!(
        a.forwarding_alarms, b.forwarding_alarms,
        "{ctx}: forwarding alarms"
    );
    assert_eq!(a.link_stats, b.link_stats, "{ctx}: link stats");
    assert_eq!(a.magnitudes, b.magnitudes, "{ctx}: magnitudes");
    assert_eq!(a.events, b.events, "{ctx}: event deltas");
}
