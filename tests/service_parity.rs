//! Live-service parity: the daemon (collector → executor → reporter with
//! bounded queues and the HTTP surface) is the *same pipeline* as the
//! offline `scenarios::run_pipelined` — so its cached, HTTP-served
//! reports must be byte-for-byte identical to the offline render, its
//! queues must stay bounded under a stalled consumer, and a graceful
//! shutdown must drain every collected bin. The CI matrix re-runs this
//! file under `PINPOINT_THREADS` × `PINPOINT_CHUNK` × `PINPOINT_PIPELINE`
//! via `common::parity_config`.

#[allow(dead_code)]
mod common;

use common::parity_config;
use pinpoint::core::render;
use pinpoint::model::records::TracerouteRecord;
use pinpoint::model::BinId;
use pinpoint::scenarios::{ixp, runner, Scale};
use pinpoint::service::{Daemon, Phase, ServiceConfig};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Issue one HTTP/1.1 request and return `(status, body)`.
fn http(addr: SocketAddr, method: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .write_all(format!("{method} {path} HTTP/1.1\r\nHost: pinpointd\r\n\r\n").as_bytes())
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    http(addr, "GET", path)
}

/// The daemon serving the AMS-IX outage window must publish, for every
/// bin, the exact bytes the offline `run_pipelined` + `render` path
/// produces — over the HTTP surface and the in-process cache alike.
#[test]
fn daemon_replay_is_byte_identical_to_offline_pipelined() {
    let mut case = ixp::case_study(7, Scale::Small);
    case.cfg = parity_config();
    let (outage_start, outage_end) = ixp::outage_bins();
    case.start_bin = BinId(outage_start - 3);
    case.end_bin = BinId(outage_end + 2);

    // Offline reference: the unified session API over the same window,
    // folding the incremental event channel as the reporter does.
    let mut offline: BTreeMap<u64, String> = BTreeMap::new();
    let mut table = pinpoint::core::EventTable::new();
    let mut analyzer = case.analyzer();
    runner::run_pipelined(&case, &mut analyzer, 0, |report| {
        table.absorb(&report.events);
        offline.insert(report.bin.0, render::bin_report(report).to_string());
    });
    assert!(
        offline.values().any(|r| r.contains("\"router\"")),
        "the outage fired no forwarding alarms — parity would only be proven on quiet bins"
    );

    // Live replay of the identical feed.
    let feed = case.platform.collect_bins(case.start_bin, case.end_bin);
    let daemon = Daemon::spawn(ServiceConfig::default(), case.analyzer(), feed.into_iter())
        .expect("daemon spawns");
    let addr = daemon.local_addr();
    daemon.state().wait_done();

    assert_eq!(
        daemon.state().bin_ids(),
        offline.keys().copied().collect::<Vec<_>>(),
        "daemon reported a different set of bins"
    );
    for (bin, want) in &offline {
        let cached = daemon.state().report(*bin).expect("bin cached");
        assert_eq!(cached.as_str(), want, "cache diverged on bin {bin}");
        let (status, body) = get(addr, &format!("/bins/{bin}/report"));
        assert_eq!(status, 200);
        assert_eq!(&body, want, "HTTP body diverged on bin {bin}");
    }
    let (status, graph) = get(addr, "/alarms/graph");
    assert_eq!(status, 200);
    assert!(graph.starts_with(&format!("{{\"bin\":{}", case.end_bin.0 - 1)));

    // The event channel: the live /events listing is the same fold.
    let (status, events_body) = get(addr, "/events");
    assert_eq!(status, 200);
    assert_eq!(
        events_body,
        render::events(&table.ranked()).to_string(),
        "live /events diverged from the offline event fold"
    );
    for event in table.ranked() {
        let (status, body) = get(addr, &format!("/events/{}", event.id));
        assert_eq!(status, 200);
        assert_eq!(
            body,
            render::event(&event).to_string(),
            "live /events/{} diverged",
            event.id
        );
    }
    for bin in offline.keys() {
        let (status, body) = get(addr, &format!("/bins/{bin}/events"));
        assert_eq!(status, 200);
        assert!(body.starts_with(&format!("{{\"bin\":{bin},\"events\":[")));
    }
    daemon.join().expect("clean join");
}

/// A deliberately stalled reporter must stall the whole pipeline through
/// the bounded queues: while the first report is held, the collector can
/// run at most `collect + report capacity + in-flight slack` bins ahead,
/// and no queue ever exceeds its bound — on a 64-bin feed.
#[test]
fn stalled_reporter_backpressures_the_collector() {
    let total = 64u64;
    let feed = (0..total).map(|b| (BinId(b), Vec::<TracerouteRecord>::new()));
    let cfg = ServiceConfig {
        collect_capacity: 2,
        report_capacity: 1,
        depth: 1,
        ..ServiceConfig::default()
    };
    // A gate the reporter blocks on before publishing each bin.
    let gate = Arc::new((Mutex::new(true), Condvar::new()));
    let hook = {
        let gate = Arc::clone(&gate);
        Box::new(move |_bin: u64| {
            let (closed, open) = &*gate;
            let mut closed = closed.lock().unwrap();
            while *closed {
                closed = open.wait(closed).unwrap();
            }
        })
    };
    let mut analyzer =
        pinpoint::core::Analyzer::new(parity_config(), pinpoint::core::aggregate::AsMapper::new());
    analyzer.register_ases([pinpoint::model::Asn(64500)]);
    let daemon = Daemon::spawn_with_report_hook(cfg, analyzer, feed, hook).expect("daemon spawns");

    // Let the pipeline saturate against the closed gate.
    let mut last = 0;
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(20));
        let now = daemon.state().bins_collected();
        if now == last && now > 0 {
            break;
        }
        last = now;
    }
    let collected = daemon.state().bins_collected();
    assert_eq!(
        daemon.state().bins_reported(),
        0,
        "gate held no report back"
    );
    // 2 queued + 1 in the collector's blocked push + 1 in the executor +
    // 1 queued report + 1 in the reporter's hook + 1 session in-flight.
    assert!(
        collected <= 8,
        "collector ran {collected} bins ahead of a stalled reporter — \
         backpressure is broken"
    );
    let (collect_q, report_q) = daemon.queue_gauges();
    assert!(
        collect_q.peak <= collect_q.capacity,
        "collect queue grew past its bound"
    );
    assert!(
        report_q.peak <= report_q.capacity,
        "report queue grew past its bound"
    );

    // Open the gate: everything drains, the bounds still hold.
    {
        let (closed, open) = &*gate;
        *closed.lock().unwrap() = false;
        open.notify_all();
    }
    daemon.state().wait_done();
    assert_eq!(daemon.state().bins_reported(), total);
    let (collect_q, report_q) = daemon.queue_gauges();
    assert!(collect_q.peak <= collect_q.capacity);
    assert!(report_q.peak <= report_q.capacity);
    daemon.join().expect("clean join");
}

/// An endless, slow feed: `POST /shutdown` must stop the collector only,
/// and every bin collected before the stop must still be reported before
/// the phase flips to done.
#[test]
fn graceful_shutdown_drains_every_collected_bin() {
    struct SlowFeed {
        next: u64,
    }
    impl Iterator for SlowFeed {
        type Item = (BinId, Vec<TracerouteRecord>);
        fn next(&mut self) -> Option<Self::Item> {
            std::thread::sleep(Duration::from_millis(2));
            let bin = BinId(self.next);
            self.next += 1;
            Some((bin, Vec::new()))
        }
    }

    let analyzer =
        pinpoint::core::Analyzer::new(parity_config(), pinpoint::core::aggregate::AsMapper::new());
    let daemon = Daemon::spawn(ServiceConfig::default(), analyzer, SlowFeed { next: 0 })
        .expect("daemon spawns");
    let addr = daemon.local_addr();

    while daemon.state().bins_reported() < 3 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let (status, body) = http(addr, "POST", "/shutdown");
    assert_eq!(status, 200);
    assert!(body.contains("\"draining\""));
    daemon.state().wait_done();

    let collected = daemon.state().bins_collected();
    let reported = daemon.state().bins_reported();
    assert_eq!(
        collected,
        reported,
        "graceful shutdown left {} collected bin(s) unreported",
        collected - reported
    );
    assert!(reported >= 3);
    assert_eq!(daemon.state().phase(), Phase::Done);
    let (_, health) = get(addr, "/health");
    assert!(health.contains("\"phase\":\"done\""));
    daemon.join().expect("clean join");
}

/// Twelve concurrent clients hammering the cached report must each get
/// the identical bytes (the immutable-cache contract), and the daemon
/// must still shut down cleanly afterwards.
#[test]
fn concurrent_clients_get_identical_bytes() {
    let feed = (0..4u64).map(|b| (BinId(b), Vec::<TracerouteRecord>::new()));
    let analyzer =
        pinpoint::core::Analyzer::new(parity_config(), pinpoint::core::aggregate::AsMapper::new());
    let daemon = Daemon::spawn(ServiceConfig::default(), analyzer, feed).expect("daemon spawns");
    let addr = daemon.local_addr();
    daemon.state().wait_done();
    let want = daemon.state().report(3).expect("bin 3 cached");

    let clients: Vec<_> = (0..12)
        .map(|_| {
            std::thread::spawn(move || {
                let (status, body) = get(addr, "/bins/3/report");
                assert_eq!(status, 200);
                body
            })
        })
        .collect();
    for client in clients {
        let body = client.join().expect("client thread");
        assert_eq!(&body, want.as_str(), "a client saw different bytes");
    }
    daemon.join().expect("clean join");
}
